package core

import (
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// moviesGraph gives predictable values for the RETURN-pipeline tests.
func moviesGraph(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	person := func(name string, age int64) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.
			Set("name", epgm.PVString(name)).Set("age", epgm.PVInt(age))}
	}
	movie := func(title string, year int64, rating float64) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Movie", Properties: epgm.Properties{}.
			Set("title", epgm.PVString(title)).Set("year", epgm.PVInt(year)).
			Set("rating", epgm.PVFloat(rating))}
	}
	ann := person("Ann", 30)
	ben := person("Ben", 25)
	cy := person("Cy", 35)
	m1 := movie("Alien", 1979, 8.5)
	m2 := movie("Aliens", 1986, 8.4)
	m3 := movie("Blade", 1998, 7.1)
	e := func(s, t epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: "likes", Source: s.ID, Target: t.ID}
	}
	return epgm.GraphFromSlices(env, "Movies",
		[]epgm.Vertex{ann, ben, cy, m1, m2, m3},
		[]epgm.Edge{e(ann, m1), e(ann, m2), e(ben, m1), e(ben, m3), e(cy, m1), e(cy, m2), e(cy, m3)})
}

func rowsOf(t *testing.T, g *epgm.LogicalGraph, query string) []Row {
	t.Helper()
	res, err := Execute(g, query, Config{})
	if err != nil {
		t.Fatalf("Execute(%q): %v", query, err)
	}
	return res.Rows()
}

func TestOrderByAndLimit(t *testing.T) {
	g := moviesGraph(3)
	rows := rowsOf(t, g, `MATCH (m:Movie) RETURN m.title ORDER BY m.title LIMIT 2`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Alien" || rows[1].Values[0].Str() != "Aliens" {
		t.Fatalf("rows: %v", rows)
	}
	desc := rowsOf(t, g, `MATCH (m:Movie) RETURN m.title ORDER BY m.year DESC`)
	if desc[0].Values[0].Str() != "Blade" {
		t.Fatalf("desc order: %v", desc)
	}
}

func TestOrderByAlias(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (m:Movie) RETURN m.rating AS score ORDER BY score DESC LIMIT 1`)
	if len(rows) != 1 || rows[0].Values[0].Float() != 8.5 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestSkip(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (m:Movie) RETURN m.title ORDER BY m.year SKIP 1`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Aliens" {
		t.Fatalf("rows: %v", rows)
	}
	none := rowsOf(t, g, `MATCH (m:Movie) RETURN m.title SKIP 99`)
	if len(none) != 0 {
		t.Fatalf("skip past end: %v", none)
	}
}

func TestDistinct(t *testing.T) {
	g := moviesGraph(3)
	all := rowsOf(t, g, `MATCH (p:Person)-[:likes]->(m:Movie) RETURN m.title`)
	if len(all) != 7 {
		t.Fatalf("raw rows=%d", len(all))
	}
	distinct := rowsOf(t, g, `MATCH (p:Person)-[:likes]->(m:Movie) RETURN DISTINCT m.title`)
	if len(distinct) != 3 {
		t.Fatalf("distinct rows=%d: %v", len(distinct), distinct)
	}
}

func TestCountStarGrouped(t *testing.T) {
	g := moviesGraph(3)
	rows := rowsOf(t, g, `MATCH (p:Person)-[:likes]->(m:Movie)
		RETURN m.title, count(*) AS fans ORDER BY fans DESC, m.title`)
	if len(rows) != 3 {
		t.Fatalf("groups=%d: %v", len(rows), rows)
	}
	if rows[0].Values[0].Str() != "Alien" || rows[0].Values[1].Int() != 3 {
		t.Fatalf("top group: %v", rows[0])
	}
	if rows[1].Values[1].Int() != 2 || rows[2].Values[1].Int() != 2 {
		t.Fatalf("remaining groups: %v", rows)
	}
}

func TestGlobalAggregates(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (m:Movie)
		RETURN count(*), min(m.year), max(m.year), sum(m.year), avg(m.rating)`)
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
	v := rows[0].Values
	if v[0].Int() != 3 || v[1].Int() != 1979 || v[2].Int() != 1998 {
		t.Fatalf("count/min/max: %v", v)
	}
	if v[3].Int() != 1979+1986+1998 {
		t.Fatalf("sum: %v", v[3])
	}
	wantAvg := (8.5 + 8.4 + 7.1) / 3
	if diff := v[4].Float() - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("avg: %v want %v", v[4], wantAvg)
	}
}

func TestCountExprSkipsNulls(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (x) RETURN count(x.rating)`)
	if rows[0].Values[0].Int() != 3 { // only movies have ratings
		t.Fatalf("count(rating): %v", rows[0])
	}
}

func TestStringPredicates(t *testing.T) {
	g := moviesGraph(2)
	starts := rowsOf(t, g, `MATCH (m:Movie) WHERE m.title STARTS WITH 'Alien' RETURN m.title`)
	if len(starts) != 2 {
		t.Fatalf("starts with: %v", starts)
	}
	ends := rowsOf(t, g, `MATCH (m:Movie) WHERE m.title ENDS WITH 's' RETURN m.title`)
	if len(ends) != 1 || ends[0].Values[0].Str() != "Aliens" {
		t.Fatalf("ends with: %v", ends)
	}
	contains := rowsOf(t, g, `MATCH (m:Movie) WHERE m.title CONTAINS 'lad' RETURN m.title`)
	if len(contains) != 1 || contains[0].Values[0].Str() != "Blade" {
		t.Fatalf("contains: %v", contains)
	}
	// Non-strings never match.
	none := rowsOf(t, g, `MATCH (m:Movie) WHERE m.year STARTS WITH '19' RETURN m.title`)
	if len(none) != 0 {
		t.Fatalf("int starts with: %v", none)
	}
}

func TestInList(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (m:Movie) WHERE m.year IN [1979, 1998, 2001] RETURN m.title ORDER BY m.title`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Alien" || rows[1].Values[0].Str() != "Blade" {
		t.Fatalf("in list: %v", rows)
	}
}

func TestIsNull(t *testing.T) {
	g := moviesGraph(2)
	noRating := rowsOf(t, g, `MATCH (x) WHERE x.rating IS NULL RETURN x`)
	if len(noRating) != 3 { // persons
		t.Fatalf("is null: %v", noRating)
	}
	withRating := rowsOf(t, g, `MATCH (x) WHERE x.rating IS NOT NULL RETURN x`)
	if len(withRating) != 3 { // movies
		t.Fatalf("is not null: %v", withRating)
	}
}

func TestArithmeticInWhereAndReturn(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (p:Person) WHERE p.age * 2 > 55 RETURN p.name, p.age + 1 AS next ORDER BY next`)
	if len(rows) != 2 {
		t.Fatalf("arith filter: %v", rows)
	}
	if rows[0].Values[0].Str() != "Ann" || rows[0].Values[1].Int() != 31 {
		t.Fatalf("arith return: %v", rows[0])
	}
	if rows[1].Values[0].Str() != "Cy" || rows[1].Values[1].Int() != 36 {
		t.Fatalf("arith return: %v", rows[1])
	}
	mod := rowsOf(t, g, `MATCH (p:Person) WHERE p.age % 2 = 1 RETURN p.name`)
	if len(mod) != 2 { // 25, 35
		t.Fatalf("mod: %v", mod)
	}
	div := rowsOf(t, g, `MATCH (p:Person) WHERE p.age / 10 = 3 RETURN p.name ORDER BY p.name`)
	if len(div) != 2 { // 30/10=3, 35/10=3 (integer division)
		t.Fatalf("div: %v", div)
	}
	concat := rowsOf(t, g, `MATCH (p:Person {name: 'Ann'}) RETURN p.name + '!' AS bang`)
	if concat[0].Values[0].Str() != "Ann!" {
		t.Fatalf("concat: %v", concat)
	}
}

func TestNegativeAndUnaryMinus(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (p:Person) WHERE -p.age < -29 RETURN p.name ORDER BY p.name`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Ann" {
		t.Fatalf("unary minus: %v", rows)
	}
}

func TestAggregateRejectedInWhere(t *testing.T) {
	g := moviesGraph(1)
	if _, err := Execute(g, `MATCH (m:Movie) WHERE count(*) > 1 RETURN m`, Config{}); err == nil {
		t.Fatal("aggregate in WHERE should error")
	}
}

func TestOrderByStarQuery(t *testing.T) {
	g := moviesGraph(2)
	res, err := Execute(g, `MATCH (m:Movie) RETURN * ORDER BY m.year DESC LIMIT 1`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestNullsSortLast(t *testing.T) {
	g := moviesGraph(2)
	rows := rowsOf(t, g, `MATCH (x) RETURN x.rating ORDER BY x.rating DESC`)
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Values[0].Float() != 8.5 {
		t.Fatalf("first: %v", rows[0])
	}
	for _, r := range rows[3:] {
		if !r.Values[0].IsNull() {
			t.Fatalf("nulls not last: %v", rows)
		}
	}
}

func TestReturnLiteralItem(t *testing.T) {
	g := moviesGraph(1)
	rows := rowsOf(t, g, `MATCH (m:Movie) RETURN 1 AS one LIMIT 2`)
	if len(rows) != 2 || rows[0].Values[0].Int() != 1 {
		t.Fatalf("literal item: %v", rows)
	}
}
