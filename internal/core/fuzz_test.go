package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gradoop/internal/operators"
)

// randomQuery builds a random but well-formed Cypher pattern-matching query
// over the randomGraph schema (labels A/B/C, edge types x/y, properties
// color/rank on vertices, w on edges).
func randomQuery(rng *rand.Rand) string {
	vars := []string{"a", "b", "c", "d"}
	nEdges := 1 + rng.Intn(3)
	used := map[string]bool{}
	labeled := map[string]bool{}
	var parts []string
	labelFor := func(v string) string {
		// Label a variable at most once so constraints never contradict.
		if labeled[v] || rng.Intn(3) != 0 {
			return ""
		}
		labeled[v] = true
		return ":" + []string{"A", "B", "C"}[rng.Intn(3)]
	}
	for i := 0; i < nEdges; i++ {
		src := vars[rng.Intn(len(vars))]
		dst := vars[rng.Intn(len(vars))]
		used[src] = true
		used[dst] = true
		srcLabel := labelFor(src)
		dstLabel := labelFor(dst)
		etype := ""
		if rng.Intn(2) == 0 {
			etype = ":" + []string{"x", "y"}[rng.Intn(2)]
		}
		hops := ""
		if rng.Intn(5) == 0 {
			lo := rng.Intn(2)
			hi := lo + 1 + rng.Intn(2)
			hops = fmt.Sprintf("*%d..%d", lo, hi)
			if etype == "" {
				etype = ":x" // keep var-length expansions bounded
			}
		}
		arrow := fmt.Sprintf("-[e%d%s%s]->", i, etype, hops)
		switch rng.Intn(4) {
		case 0:
			arrow = fmt.Sprintf("<-[e%d%s%s]-", i, etype, hops)
		case 1:
			if hops == "" {
				arrow = fmt.Sprintf("-[e%d%s]-", i, etype)
			}
		}
		parts = append(parts, fmt.Sprintf("(%s%s)%s(%s%s)", src, srcLabel, arrow, dst, dstLabel))
	}

	var preds []string
	usedVars := make([]string, 0, len(used))
	for _, v := range vars {
		if used[v] {
			usedVars = append(usedVars, v)
		}
	}
	pick := func() string { return usedVars[rng.Intn(len(usedVars))] }
	pool := []func() string{
		func() string { return fmt.Sprintf("%s.rank < %d", pick(), rng.Intn(5)) },
		func() string { return fmt.Sprintf("%s.rank >= %d", pick(), rng.Intn(5)) },
		func() string {
			return fmt.Sprintf("%s.color = '%s'", pick(), []string{"red", "green", "blue"}[rng.Intn(3)])
		},
		func() string { return fmt.Sprintf("%s.color <> %s.color", pick(), pick()) },
		func() string { return fmt.Sprintf("%s.rank = %s.rank", pick(), pick()) },
		func() string { return fmt.Sprintf("%s.rank IN [0, 2, 4]", pick()) },
		func() string { return fmt.Sprintf("%s.color STARTS WITH 'r'", pick()) },
		func() string { return fmt.Sprintf("%s.color CONTAINS 'e'", pick()) },
		func() string { return fmt.Sprintf("%s.missing IS NULL", pick()) },
		func() string { return fmt.Sprintf("%s.rank + 1 <= %s.rank * 2", pick(), pick()) },
		func() string { return fmt.Sprintf("NOT %s.rank = %d", pick(), rng.Intn(5)) },
		func() string { return fmt.Sprintf("(%s.rank = 1 OR %s.rank = 3)", pick(), pick()) },
	}
	for i := 0; i < rng.Intn(3); i++ {
		preds = append(preds, pool[rng.Intn(len(pool))]())
	}

	q := "MATCH " + strings.Join(parts, ", ")
	if len(preds) > 0 {
		q += " WHERE " + strings.Join(preds, " AND ")
	}
	return q + " RETURN *"
}

// TestRandomQueriesAgainstReference generates random queries and verifies
// the full engine (parser → planner → operators) against the brute-force
// oracle for every morphism combination.
func TestRandomQueriesAgainstReference(t *testing.T) {
	morphs := []Config{
		{Vertex: operators.Homomorphism, Edge: operators.Homomorphism},
		{Vertex: operators.Homomorphism, Edge: operators.Isomorphism},
		{Vertex: operators.Isomorphism, Edge: operators.Isomorphism},
	}
	total := 0
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 1+int(seed)%4, 10, 16)
		for i := 0; i < 12; i++ {
			q := randomQuery(rng)
			cfg := morphs[rng.Intn(len(morphs))]
			t.Run(fmt.Sprintf("seed%d/q%d", seed, i), func(t *testing.T) {
				compareWithReference(t, g, q, cfg)
			})
			total++
		}
	}
	if total != 72 {
		t.Fatalf("expected 72 random queries, ran %d", total)
	}
}
