package core

import (
	"fmt"
	"time"

	"gradoop/internal/operators"
	"gradoop/internal/qstore"
	"gradoop/internal/trace"
)

// This file implements EXPLAIN ANALYZE: the executed plan rendered with,
// per operator, the planner's estimated cardinality next to the actual one
// recorded by the execution tracer, the estimate's q-error, the operator's
// materialized memory-broker bytes, self wall time and the simulated
// cluster time of its stages. It is the direct lens on the evaluation's
// attribution questions — which operator eats the time, and how far the
// cardinality estimates drift (Table 4). The structured form
// (qstore.OpMetrics) is shared with the query store so the HTTP /analyze
// view and a persisted execution record carry one schema.

// traceToken unwraps the reuse wrappers to the operator that actually
// recorded trace statistics: Alias and Cached pass evaluation through to
// their inner operator, so their actuals live under its token.
func traceToken(op operators.Operator) operators.Operator {
	for {
		switch o := op.(type) {
		case *operators.Alias:
			op = o.In
		case *operators.Cached:
			op = o.Inner
		default:
			return op
		}
	}
}

// AnalyzedOps extracts per-operator metrics from the execution trace in
// Explain order (parent before children), one qstore.OpMetrics per plan
// node. It requires the query to have run with Config.Trace set and
// returns nil otherwise.
func (r *Result) AnalyzedOps() []qstore.OpMetrics {
	c := r.Trace
	if c == nil {
		return nil
	}
	cfg := r.Env.Config()
	spans := map[int64]trace.Span{}
	for _, s := range c.Spans() {
		spans[s.Stage] = s
	}
	nodes := r.Plan.Nodes()
	out := make([]qstore.OpMetrics, 0, len(nodes))
	for _, n := range nodes {
		om := qstore.OpMetrics{Op: n.Op.Description(), Depth: n.Depth}
		inner := traceToken(n.Op)
		st, ok := c.Op(inner)
		if !ok {
			// Never evaluated (e.g. a subtree skipped after a failure).
			om.NotExecuted = true
			out = append(out, om)
			continue
		}
		om.Act = st.Rows
		om.WallNs = int64(st.Wall)
		om.Shared = inner != n.Op
		var sim time.Duration
		for _, stage := range st.Stages {
			if s, found := spans[stage]; found {
				sim += s.SimTime(cfg.CPUTimePerElement, cfg.NetTimePerByte,
					cfg.DiskTimePerByte, cfg.StageOverhead)
				for _, p := range s.Parts {
					om.MemBytes += p.MemBytes
				}
			}
		}
		om.SimNs = int64(sim)
		if est, hasEst := r.Plan.Estimates[n.Op]; hasEst {
			om.Est = est
			om.HasEstimate = true
			om.QError = qstore.QError(est, st.Rows)
		}
		out = append(out, om)
	}
	return out
}

// AnalyzedPlan renders the executed plan annotated, per operator, with
// actual output cardinality, estimate q-error, self wall time (children
// excluded), the simulated cluster time of the operator's stages, and —
// when memory governance metered the run — the materialized bytes charged
// to the broker. It requires the query to have run with Config.Trace set;
// without a trace it degrades to the plain Explain rendering.
func (r *Result) AnalyzedPlan() string {
	ops := r.AnalyzedOps()
	if ops == nil {
		return r.Plan.Explain()
	}
	// QueryPlan.Nodes and ExplainWith walk the tree in the same order, so
	// the annotator consumes the metrics slice sequentially.
	i := 0
	return r.Plan.ExplainWith(func(op operators.Operator) string {
		om := ops[i]
		i++
		if om.NotExecuted {
			return "[not executed]"
		}
		annot := fmt.Sprintf("act=%d", om.Act)
		if om.HasEstimate {
			annot += fmt.Sprintf(" err=%.1fx", om.QError)
		}
		annot += fmt.Sprintf(" self=%s sim=%s",
			time.Duration(om.WallNs).Round(time.Microsecond),
			time.Duration(om.SimNs).Round(time.Microsecond))
		if om.MemBytes > 0 {
			annot += fmt.Sprintf(" mem=%dB", om.MemBytes)
		}
		if om.Shared {
			// Reuse wrappers share the canonical operator's execution.
			annot += " (shared)"
		}
		return "[" + annot + "]"
	})
}
