package core

import (
	"fmt"
	"math"
	"time"

	"gradoop/internal/operators"
	"gradoop/internal/trace"
)

// This file implements EXPLAIN ANALYZE: the executed plan rendered with,
// per operator, the planner's estimated cardinality next to the actual one
// recorded by the execution tracer, the estimate's q-error, the operator's
// self wall time and the simulated cluster time of its stages. It is the
// direct lens on the evaluation's attribution questions — which operator
// eats the time, and how far the cardinality estimates drift (Table 4).

// traceToken unwraps the reuse wrappers to the operator that actually
// recorded trace statistics: Alias and Cached pass evaluation through to
// their inner operator, so their actuals live under its token.
func traceToken(op operators.Operator) operators.Operator {
	for {
		switch o := op.(type) {
		case *operators.Alias:
			op = o.In
		case *operators.Cached:
			op = o.Inner
		default:
			return op
		}
	}
}

// qerror is the symmetric estimate-error factor: max(est/act, act/est),
// with both sides clamped to ≥1 row so empty results stay finite. 1.0 is a
// perfect estimate.
func qerror(est float64, act int64) float64 {
	e := math.Max(est, 1)
	a := math.Max(float64(act), 1)
	return math.Max(e/a, a/e)
}

// AnalyzedPlan renders the executed plan annotated, per operator, with
// actual output cardinality, estimate q-error, self wall time (children
// excluded) and the simulated cluster time of the operator's stages. It
// requires the query to have run with Config.Trace set; without a trace it
// degrades to the plain Explain rendering.
func (r *Result) AnalyzedPlan() string {
	c := r.Trace
	if c == nil {
		return r.Plan.Explain()
	}
	cfg := r.Env.Config()
	spans := map[int64]trace.Span{}
	for _, s := range c.Spans() {
		spans[s.Stage] = s
	}
	return r.Plan.ExplainWith(func(op operators.Operator) string {
		inner := traceToken(op)
		st, ok := c.Op(inner)
		if !ok {
			// Never evaluated (e.g. a subtree skipped after a failure).
			return "[not executed]"
		}
		var sim time.Duration
		for _, stage := range st.Stages {
			if s, found := spans[stage]; found {
				sim += s.SimTime(cfg.CPUTimePerElement, cfg.NetTimePerByte,
					cfg.DiskTimePerByte, cfg.StageOverhead)
			}
		}
		est, hasEst := r.Plan.Estimates[op]
		annot := fmt.Sprintf("act=%d", st.Rows)
		if hasEst {
			annot += fmt.Sprintf(" err=%.1fx", qerror(est, st.Rows))
		}
		annot += fmt.Sprintf(" self=%s sim=%s",
			st.Wall.Round(time.Microsecond), sim.Round(time.Microsecond))
		if inner != op {
			// Reuse wrappers share the canonical operator's execution.
			annot += " (shared)"
		}
		return "[" + annot + "]"
	})
}
