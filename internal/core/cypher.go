// Package core implements the EPGM graph pattern matching operator
// (Definition 2.4), the paper's primary contribution: it parses a Cypher
// query, simplifies it into a query graph, plans a physical operator tree
// with the greedy cost-based planner and executes it on the dataflow engine.
// Results are available as a graph collection (the EPGM operator contract),
// as tabular rows (Neo4j-style), or as raw embeddings.
package core

import (
	"context"
	"fmt"
	"time"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
	"gradoop/internal/stats"
	"gradoop/internal/trace"
)

// Config controls one query execution.
type Config struct {
	// Vertex and Edge semantics (Homomorphism or Isomorphism); the paper's
	// operator signature g.cypher(q, HOMO, ISO).
	Vertex operators.Semantics
	Edge   operators.Semantics
	// Params provides values for $parameters in the query.
	Params map[string]epgm.PropertyValue
	// Stats supplies pre-computed statistics; when nil they are collected
	// on the fly (and charged to the job's metrics).
	Stats *stats.GraphStatistics
	// Access overrides how leaves read the graph; when nil a PlainAccess
	// over the input graph is used. Pass an IndexedAccess to exploit the
	// label-partitioned representation (§3.4).
	Access planner.GraphAccess
	// Hint selects the physical join strategy.
	Hint dataflow.JoinHint
	// DisableSubqueryReuse turns off recurring-subquery leaf sharing.
	DisableSubqueryReuse bool
	// Context cancels the dataflow job when it is done; Execute then
	// returns the context's error (with partial metrics intact on the
	// environment). Nil means not cancellable.
	Context context.Context
	// Timeout aborts execution after the given duration (0 = none); an
	// expired timeout surfaces as context.DeadlineExceeded. It composes
	// with Context: whichever fires first cancels the job.
	Timeout time.Duration
	// Trace, when non-nil, records per-stage execution spans (operator
	// attribution, per-partition rows/bytes/wall time, retries) into the
	// collector while the query runs. It powers Result.AnalyzedPlan and the
	// Chrome trace export. Nil — the default — disables tracing entirely;
	// execution takes the engine's zero-cost path and produces bit-identical
	// results and metrics.
	Trace *trace.Collector
}

// Result is an executed query.
type Result struct {
	Graph      *epgm.LogicalGraph
	QueryGraph *cypher.QueryGraph
	Plan       *planner.QueryPlan
	Embeddings *dataflow.Dataset[embedding.Embedding]
	Meta       *embedding.Meta
	// Env is the environment the query executed on (the graph's, unless
	// Config.Access overrode it).
	Env *dataflow.Env
	// Trace is the execution trace recorded during the run, or nil when
	// Config.Trace was not set. AnalyzedPlan and the Chrome export read it.
	Trace *trace.Collector
}

// prepare parses, simplifies and plans a query.
func prepare(g *epgm.LogicalGraph, query string, cfg Config) (*cypher.QueryGraph, *planner.QueryPlan, error) {
	ast, err := cypher.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	qg, err := cypher.BuildQueryGraph(ast, cfg.Params)
	if err != nil {
		return nil, nil, err
	}
	st := cfg.Stats
	if st == nil {
		st = GraphStats(g)
	}
	access := cfg.Access
	if access == nil {
		access = planner.PlainAccess{Graph: g}
	}
	pl := &planner.Planner{
		Stats:        st,
		Morph:        operators.Morphism{Vertex: cfg.Vertex, Edge: cfg.Edge},
		Hint:         cfg.Hint,
		DisableReuse: cfg.DisableSubqueryReuse,
	}
	plan, err := pl.Plan(access, qg)
	if err != nil {
		return nil, nil, err
	}
	return qg, plan, nil
}

// Plan parses, simplifies and plans a query without executing it.
func Plan(g *epgm.LogicalGraph, query string, cfg Config) (*planner.QueryPlan, error) {
	_, plan, err := prepare(g, query, cfg)
	return plan, err
}

// Execute runs a Cypher query against a logical graph. Execution is fault
// tolerant: a panic inside the dataflow job is contained and returned as a
// *dataflow.JobError, an expired Timeout or cancelled Context returns the
// context's error, and worker failures injected through the environment's
// FaultPlan are recovered transparently (bounded retries; only an
// exhausted retry budget becomes an error). In every failure case the
// environment's metrics remain readable, reflecting the work done up to
// the failure.
func Execute(g *epgm.LogicalGraph, query string, cfg Config) (*Result, error) {
	p, err := Prepare(g, query, cfg)
	if err != nil {
		return nil, err
	}
	return p.Execute(g, cfg)
}

// Count returns the number of matches.
func (r *Result) Count() int64 { return r.Embeddings.Count() }

// Explain renders the executed plan.
func (r *Result) Explain() string { return r.Plan.Explain() }

// Row is one tabular result row (Neo4j-style RETURN).
type Row struct {
	Columns []string
	Values  []epgm.PropertyValue
}

// String renders the row as "col: value, ...".
func (row Row) String() string {
	s := ""
	for i, c := range row.Columns {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: %s", c, row.Values[i])
	}
	return s
}

// GraphCollection materializes the matches as new logical graphs
// (Definition 2.4): every embedding becomes a graph whose head stores the
// variable bindings as properties, and the matched data vertices and edges
// gain membership in the new graph.
func (r *Result) GraphCollection() *epgm.GraphCollection {
	env := r.Graph.Env()
	meta := r.Meta
	embeddings := r.Embeddings.Collect()

	heads := make([]epgm.GraphHead, 0, len(embeddings))
	vertexGraphs := map[epgm.ID]epgm.IDSet{}
	edgeGraphs := map[epgm.ID]epgm.IDSet{}

	for _, e := range embeddings {
		head := epgm.GraphHead{ID: epgm.NewID(), Label: "Match"}
		for c := 0; c < meta.Columns(); c++ {
			if e.IsNullAt(c) {
				continue
			}
			v := meta.Var(c)
			switch meta.Kind(c) {
			case embedding.VertexEntry:
				id := e.ID(c)
				head.Properties = head.Properties.Set(v, epgm.PVInt(int64(id)))
				vertexGraphs[id] = vertexGraphs[id].Add(head.ID)
			case embedding.EdgeEntry:
				id := e.ID(c)
				head.Properties = head.Properties.Set(v, epgm.PVInt(int64(id)))
				edgeGraphs[id] = edgeGraphs[id].Add(head.ID)
			case embedding.PathEntry:
				path := e.Path(c)
				head.Properties = head.Properties.Set(v, epgm.PVString(fmt.Sprintf("%v", path)))
				for i, id := range path {
					if i%2 == 0 {
						edgeGraphs[id] = edgeGraphs[id].Add(head.ID)
					} else {
						vertexGraphs[id] = vertexGraphs[id].Add(head.ID)
					}
				}
			}
		}
		heads = append(heads, head)
	}

	vs := dataflow.FlatMap(r.Graph.Vertices, func(v epgm.Vertex, emit func(epgm.Vertex)) {
		gs, ok := vertexGraphs[v.ID]
		if !ok {
			return
		}
		ids := v.GraphIDs.Clone()
		for _, g := range gs {
			ids = ids.Add(g)
		}
		v.GraphIDs = ids
		emit(v)
	})
	es := dataflow.FlatMap(r.Graph.Edges, func(e epgm.Edge, emit func(epgm.Edge)) {
		gs, ok := edgeGraphs[e.ID]
		if !ok {
			return
		}
		ids := e.GraphIDs.Clone()
		for _, g := range gs {
			ids = ids.Add(g)
		}
		e.GraphIDs = ids
		emit(e)
	})
	return epgm.NewGraphCollection(env, dataflow.FromSlice(env, heads), vs, es)
}
