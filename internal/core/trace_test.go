package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
	"gradoop/internal/trace"
)

const traceTestQuery = `MATCH (p:Person)-[:knows]->(q:Person)-[:studyAt]->(u:University) RETURN *`

// TestTracingDisabledParity: running the same query with and without a
// trace collector must produce identical embeddings and an identical
// metrics snapshot — tracing observes the execution, it never perturbs it.
func TestTracingDisabledParity(t *testing.T) {
	g := figure1(4)
	st := stats.Collect(g)
	base := Config{Vertex: operators.Homomorphism, Edge: operators.Isomorphism, Stats: st}

	runOnce := func(col *trace.Collector) ([]Row, dataflow.MetricsSnapshot) {
		cfg := base
		cfg.Trace = col
		g.Env().ResetMetrics()
		res := run(t, g, traceTestQuery, cfg)
		return res.Rows(), g.Env().Metrics()
	}

	plainRows, plainMetrics := runOnce(nil)
	tracedRows, tracedMetrics := runOnce(trace.NewCollector())

	if !reflect.DeepEqual(plainRows, tracedRows) {
		t.Errorf("rows differ with tracing enabled:\nplain:  %v\ntraced: %v", plainRows, tracedRows)
	}
	if !reflect.DeepEqual(plainMetrics, tracedMetrics) {
		t.Errorf("metrics differ with tracing enabled:\nplain:  %+v\ntraced: %+v", plainMetrics, tracedMetrics)
	}
}

// TestChromeTraceRoundTrip: the exported trace_event JSON must contain one
// driver event per executed stage and attempt events covering every worker
// track.
func TestChromeTraceRoundTrip(t *testing.T) {
	const workers = 4
	g := figure1(workers)
	st := stats.Collect(g)
	col := trace.NewCollector()
	g.Env().ResetMetrics()
	res := run(t, g, traceTestQuery, Config{
		Vertex: operators.Homomorphism, Edge: operators.Isomorphism,
		Stats: st, Trace: col,
	})
	if res.Count() == 0 {
		t.Fatal("query matched nothing; trace would be trivial")
	}
	m := g.Env().Metrics()

	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc trace.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var stages int64
	workerTracks := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "stage":
			stages++
			if e.TID != 0 {
				t.Errorf("stage event %q on tid %d, want driver track 0", e.Name, e.TID)
			}
		case "attempt":
			workerTracks[e.TID] = true
		}
	}
	if stages != m.Stages {
		t.Errorf("trace has %d stage events, metrics counted %d stages", stages, m.Stages)
	}
	if int64(len(col.Spans())) != m.Stages {
		t.Errorf("collector holds %d spans for %d stages", len(col.Spans()), m.Stages)
	}
	for w := 1; w <= workers; w++ {
		if !workerTracks[w] {
			t.Errorf("no attempt events on worker track %d (tracks seen: %v)", w, workerTracks)
		}
	}
}

// TestAnalyzedPlan: every operator line of the EXPLAIN ANALYZE rendering
// must carry both the estimate and the recorded actuals, and the root
// actual must equal the result cardinality.
func TestAnalyzedPlan(t *testing.T) {
	g := figure1(2)
	res := run(t, g, traceTestQuery, Config{
		Vertex: operators.Homomorphism, Edge: operators.Isomorphism,
		Trace: trace.NewCollector(),
	})

	analyzed := res.AnalyzedPlan()
	lines := strings.Split(strings.TrimRight(analyzed, "\n"), "\n")
	for i, line := range lines {
		for _, want := range []string{"~", "act=", "err=", "self=", "sim="} {
			if !strings.Contains(line, want) {
				t.Errorf("line %d lacks %q: %q", i, want, line)
			}
		}
	}
	rootAct, ok := res.Trace.Op(res.Plan.Root)
	if !ok {
		t.Fatal("root operator has no trace statistics")
	}
	if rootAct.Rows != res.Count() {
		t.Errorf("root actual %d != result count %d", rootAct.Rows, res.Count())
	}
}

// TestAnalyzedPlanFallsBackWithoutTrace: without a collector the analyzed
// rendering degrades to the plain Explain output.
func TestAnalyzedPlanFallsBackWithoutTrace(t *testing.T) {
	g := figure1(2)
	res := run(t, g, traceTestQuery, Config{
		Vertex: operators.Homomorphism, Edge: operators.Isomorphism,
	})
	if res.AnalyzedPlan() != res.Explain() {
		t.Error("AnalyzedPlan without a trace should equal Explain")
	}
}

// TestTraceRetriesVisible: a fault-injected query must surface its retries
// in the trace spans.
func TestTraceRetriesVisible(t *testing.T) {
	g := figure1(4)
	// Stats are precomputed so the fault plan's stage numbers refer to the
	// traced query stages, not the stats-collection job.
	st := stats.Collect(g)
	col := trace.NewCollector()
	g.Env().ResetMetrics()
	g.Env().InjectFaults(&dataflow.FaultPlan{Kills: []dataflow.Kill{
		{Stage: 1, Partition: 1}, {Stage: 2, Partition: 0, Times: 2},
	}})
	defer g.Env().InjectFaults(nil)
	run(t, g, traceTestQuery, Config{
		Vertex: operators.Homomorphism, Edge: operators.Isomorphism,
		Stats: st, Trace: col,
	})
	var retries int64
	var failedAttempts int
	for _, s := range col.Spans() {
		retries += s.Retries()
		for _, a := range s.Attempts {
			if a.Failed {
				failedAttempts++
			}
		}
	}
	if retries == 0 || failedAttempts == 0 {
		t.Errorf("injected failure left no trace: retries=%d failedAttempts=%d", retries, failedAttempts)
	}
	if m := g.Env().Metrics(); m.Retries != retries {
		t.Errorf("metrics retries %d != trace retries %d", m.Retries, retries)
	}
}
