package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gradoop/internal/baseline"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
)

// figure1 builds a graph like the paper's Figure 1: persons, a university,
// a city, knows/studyAt/isLocatedIn edges.
func figure1(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	person := func(name, gender string) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.
			Set("name", epgm.PVString(name)).Set("gender", epgm.PVString(gender))}
	}
	alice := person("Alice", "female")
	bob := person("Bob", "male")
	eve := person("Eve", "female")
	carol := person("Carol", "female")
	uni := epgm.Vertex{ID: epgm.NewID(), Label: "University",
		Properties: epgm.Properties{}.Set("name", epgm.PVString("Uni Leipzig"))}
	city := epgm.Vertex{ID: epgm.NewID(), Label: "City",
		Properties: epgm.Properties{}.Set("name", epgm.PVString("Leipzig"))}
	e := func(label string, s, t epgm.Vertex, props epgm.Properties) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: label, Source: s.ID, Target: t.ID, Properties: props}
	}
	return epgm.GraphFromSlices(env, "Community",
		[]epgm.Vertex{alice, bob, eve, carol, uni, city},
		[]epgm.Edge{
			e("knows", alice, bob, nil),
			e("knows", bob, alice, nil),
			e("knows", bob, eve, nil),
			e("knows", eve, carol, nil),
			e("knows", carol, alice, nil),
			e("studyAt", alice, uni, epgm.Properties{}.Set("classYear", epgm.PVInt(2015))),
			e("studyAt", bob, uni, epgm.Properties{}.Set("classYear", epgm.PVInt(2014))),
			e("studyAt", eve, uni, epgm.Properties{}.Set("classYear", epgm.PVInt(2016))),
			e("isLocatedIn", uni, city, nil),
		})
}

func run(t *testing.T, g *epgm.LogicalGraph, query string, cfg Config) *Result {
	t.Helper()
	res, err := Execute(g, query, cfg)
	if err != nil {
		t.Fatalf("Execute(%q): %v", query, err)
	}
	return res
}

// compareWithReference executes the query on the engine and on the
// brute-force oracle and requires identical binding multisets.
func compareWithReference(t *testing.T, g *epgm.LogicalGraph, query string, cfg Config) int {
	t.Helper()
	res := run(t, g, query, cfg)

	ref := baseline.NewReference(g)
	morph := operators.Morphism{Vertex: cfg.Vertex, Edge: cfg.Edge}
	want := ref.Match(res.QueryGraph, morph)

	var vertexVars, edgeVars, pathVars []string
	for _, qv := range res.QueryGraph.Vertices {
		vertexVars = append(vertexVars, qv.Var)
	}
	for _, qe := range res.QueryGraph.Edges {
		if qe.IsVarLength() {
			pathVars = append(pathVars, qe.Var)
		} else {
			edgeVars = append(edgeVars, qe.Var)
		}
	}

	wantKeys := make([]string, len(want))
	for i, b := range want {
		wantKeys[i] = b.Key(vertexVars, edgeVars, pathVars)
	}
	sort.Strings(wantKeys)

	meta := res.Meta
	var gotKeys []string
	for _, e := range res.Embeddings.Collect() {
		b := baseline.Binding{Vertices: map[string]epgm.ID{}, Edges: map[string]epgm.ID{}, Paths: map[string][]epgm.ID{}}
		for c := 0; c < meta.Columns(); c++ {
			switch meta.Kind(c) {
			case embedding.VertexEntry:
				b.Vertices[meta.Var(c)] = e.ID(c)
			case embedding.EdgeEntry:
				b.Edges[meta.Var(c)] = e.ID(c)
			case embedding.PathEntry:
				b.Paths[meta.Var(c)] = e.Path(c)
			}
		}
		gotKeys = append(gotKeys, b.Key(vertexVars, edgeVars, pathVars))
	}
	sort.Strings(gotKeys)

	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("query %q: engine found %d matches, reference %d\nplan:\n%s",
			query, len(gotKeys), len(wantKeys), res.Explain())
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("query %q: binding mismatch at %d:\n got %s\nwant %s", query, i, gotKeys[i], wantKeys[i])
		}
	}
	return len(wantKeys)
}

func TestSimpleEdgePattern(t *testing.T) {
	g := figure1(4)
	n := compareWithReference(t, g, `MATCH (a:Person)-[:knows]->(b:Person) RETURN *`, Config{})
	if n != 5 {
		t.Fatalf("knows matches=%d want 5", n)
	}
}

func TestVertexOnlyPattern(t *testing.T) {
	g := figure1(2)
	n := compareWithReference(t, g, `MATCH (p:Person) RETURN *`, Config{})
	if n != 4 {
		t.Fatalf("persons=%d", n)
	}
	n = compareWithReference(t, g, `MATCH (p:Person) WHERE p.gender = 'female' RETURN *`, Config{})
	if n != 3 {
		t.Fatalf("females=%d", n)
	}
}

func TestPaperStudyAtQuery(t *testing.T) {
	g := figure1(4)
	// Table 2a: persons with studyAt classYear > 2014.
	res := run(t, g, `MATCH (p1:Person)-[s:studyAt]->(u:University)
		WHERE s.classYear > 2014 RETURN p1.name, u.name`, Config{})
	rows := res.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows=%d want 2 (Alice, Eve)\n%s", len(rows), res.Explain())
	}
	names := map[string]bool{}
	for _, r := range rows {
		if len(r.Columns) != 2 || r.Columns[0] != "p1.name" {
			t.Fatalf("columns: %v", r.Columns)
		}
		names[r.Values[0].Str()] = true
		if r.Values[1].Str() != "Uni Leipzig" {
			t.Fatalf("university: %v", r.Values[1])
		}
	}
	if !names["Alice"] || !names["Eve"] {
		t.Fatalf("names: %v", names)
	}
}

func TestPaperFlagshipQuery(t *testing.T) {
	g := figure1(4)
	query := `MATCH (p1:Person)-[s:studyAt]->(u:University),
	                (p2:Person)-[:studyAt]->(u),
	                (p1)-[e:knows*1..3]->(p2)
	          WHERE p1.gender <> p2.gender
	            AND u.name = 'Uni Leipzig'
	            AND s.classYear > 2014
	          RETURN *`
	for _, morph := range []Config{
		{Vertex: operators.Homomorphism, Edge: operators.Homomorphism},
		{Vertex: operators.Homomorphism, Edge: operators.Isomorphism},
		{Vertex: operators.Isomorphism, Edge: operators.Isomorphism},
	} {
		compareWithReference(t, g, query, morph)
	}
}

func TestVarLengthPathBounds(t *testing.T) {
	g := figure1(3)
	for _, q := range []string{
		`MATCH (a:Person)-[e:knows*1..1]->(b) RETURN *`,
		`MATCH (a:Person)-[e:knows*1..2]->(b) RETURN *`,
		`MATCH (a:Person)-[e:knows*2..3]->(b) RETURN *`,
		`MATCH (a:Person)-[e:knows*0..2]->(b) RETURN *`,
	} {
		for _, cfg := range []Config{
			{},
			{Vertex: operators.Isomorphism, Edge: operators.Isomorphism},
			{Vertex: operators.Homomorphism, Edge: operators.Isomorphism},
		} {
			compareWithReference(t, g, q, cfg)
		}
	}
}

func TestVarLengthZeroHops(t *testing.T) {
	g := figure1(2)
	// With *0..0 every Person matches itself.
	n := compareWithReference(t, g, `MATCH (a:Person)-[e:knows*0..0]->(b) RETURN *`, Config{})
	if n != 4 {
		t.Fatalf("zero-hop matches=%d want 4", n)
	}
}

func TestVarLengthCycleClosing(t *testing.T) {
	g := figure1(3)
	// Both endpoints bound by other pattern parts: the expand must check the
	// target binding rather than create a column.
	q := `MATCH (a:Person)-[:knows]->(b:Person), (b)-[e:knows*1..3]->(a) RETURN *`
	for _, cfg := range []Config{
		{},
		{Vertex: operators.Isomorphism, Edge: operators.Isomorphism},
	} {
		compareWithReference(t, g, q, cfg)
	}
}

func TestIncomingAndAlternation(t *testing.T) {
	g := figure1(3)
	compareWithReference(t, g, `MATCH (u:University)<-[s:studyAt]-(p:Person) RETURN *`, Config{})
	compareWithReference(t, g, `MATCH (x:University|City) RETURN *`, Config{})
	compareWithReference(t, g, `MATCH (p:Person)-[:studyAt|isLocatedIn]->(x) RETURN *`, Config{})
}

func TestUndirectedPattern(t *testing.T) {
	g := figure1(3)
	compareWithReference(t, g, `MATCH (a:Person)-[e:knows]-(b:Person) RETURN *`, Config{})
}

func TestTrianglePattern(t *testing.T) {
	g := figure1(4)
	// Query 5 shape: directed triangles.
	q := `MATCH (p1:Person)-[:knows]->(p2:Person),
	            (p2)-[:knows]->(p3:Person),
	            (p1)-[:knows]->(p3)
	      RETURN *`
	compareWithReference(t, g, q, Config{})
	compareWithReference(t, g, q, Config{Vertex: operators.Isomorphism, Edge: operators.Isomorphism})
}

func TestHomomorphismVsIsomorphismDiffer(t *testing.T) {
	g := figure1(2)
	// (a)-[:knows]->(b)-[:knows]->(c): homomorphism allows a=c
	// (Alice->Bob->Alice), isomorphism forbids it.
	q := `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN *`
	homo := compareWithReference(t, g, q, Config{})
	iso := compareWithReference(t, g, q, Config{Vertex: operators.Isomorphism, Edge: operators.Isomorphism})
	if homo <= iso {
		t.Fatalf("expected homo (%d) > iso (%d)", homo, iso)
	}
}

func TestAnonymousElements(t *testing.T) {
	g := figure1(2)
	compareWithReference(t, g, `MATCH (:Person)-[:studyAt]->(u) RETURN *`, Config{})
	compareWithReference(t, g, `MATCH (p:Person)-->(x) RETURN *`, Config{})
}

func TestDisconnectedPatternCartesian(t *testing.T) {
	g := figure1(3)
	n := compareWithReference(t, g, `MATCH (u:University), (c:City) RETURN *`, Config{})
	if n != 1 {
		t.Fatalf("cartesian matches=%d want 1", n)
	}
	compareWithReference(t, g, `MATCH (a:Person)-[:knows]->(b), (c:City) RETURN *`, Config{})
}

func TestParamsAndPropertyMap(t *testing.T) {
	g := figure1(2)
	cfg := Config{Params: map[string]epgm.PropertyValue{"n": epgm.PVString("Alice")}}
	res := run(t, g, `MATCH (p:Person {name: $n})-[:knows]->(q) RETURN q.name`, cfg)
	rows := res.Rows()
	if len(rows) != 1 || rows[0].Values[0].Str() != "Bob" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestIndexedAccessSameResults(t *testing.T) {
	g := figure1(3)
	idx := epgm.BuildIndex(g)
	q := `MATCH (p1:Person)-[:knows]->(p2:Person)-[:studyAt]->(u:University) RETURN *`
	plain := run(t, g, q, Config{})
	indexed := run(t, g, q, Config{Access: planner.IndexedAccess{Index: idx}})
	if plain.Count() != indexed.Count() {
		t.Fatalf("plain=%d indexed=%d", plain.Count(), indexed.Count())
	}
}

func TestBroadcastHintSameResults(t *testing.T) {
	g := figure1(3)
	q := `MATCH (p1:Person)-[:knows]->(p2:Person)-[:knows]->(p3:Person) RETURN *`
	a := run(t, g, q, Config{Hint: dataflow.RepartitionHash})
	b := run(t, g, q, Config{Hint: dataflow.BroadcastLeft})
	if a.Count() != b.Count() {
		t.Fatalf("repartition=%d broadcast=%d", a.Count(), b.Count())
	}
}

func TestGraphCollectionResult(t *testing.T) {
	g := figure1(2)
	res := run(t, g, `MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *`, Config{})
	coll := res.GraphCollection()
	if coll.GraphCount() != 3 {
		t.Fatalf("graphs=%d want 3", coll.GraphCount())
	}
	heads := coll.Heads.Collect()
	for _, h := range heads {
		// Variable bindings stored as head properties.
		if h.Properties.Get("p").IsNull() || h.Properties.Get("u").IsNull() || h.Properties.Get("s").IsNull() {
			t.Fatalf("head missing bindings: %v", h.Properties)
		}
	}
	// Each result graph contains exactly its two vertices and one edge.
	lg, ok := coll.Graph(heads[0].ID)
	if !ok {
		t.Fatal("graph lookup failed")
	}
	if lg.VertexCount() != 2 || lg.EdgeCount() != 1 {
		t.Fatalf("result graph: %d vertices %d edges", lg.VertexCount(), lg.EdgeCount())
	}
}

func TestRowsReturnStarSkipsAnonymous(t *testing.T) {
	g := figure1(2)
	res := run(t, g, `MATCH (p:Person)-[:studyAt]->(u) RETURN *`, Config{})
	rows := res.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, c := range rows[0].Columns {
		if c != "p" && c != "u" {
			t.Fatalf("unexpected column %q", c)
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	q := `MATCH (p1:Person)-[e:knows*1..2]->(p2:Person)-[:studyAt]->(u) RETURN *`
	baselineCount := int64(-1)
	for _, w := range []int{1, 2, 4, 8} {
		g := figure1(w)
		res := run(t, g, q, Config{})
		if baselineCount == -1 {
			baselineCount = res.Count()
		} else if res.Count() != baselineCount {
			t.Fatalf("workers=%d count=%d, want %d", w, res.Count(), baselineCount)
		}
	}
}

// randomGraph builds a random labeled property graph for oracle fuzzing.
func randomGraph(rng *rand.Rand, workers, nv, ne int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	labels := []string{"A", "B", "C"}
	colors := []string{"red", "green", "blue"}
	vertices := make([]epgm.Vertex, nv)
	for i := range vertices {
		vertices[i] = epgm.Vertex{
			ID:    epgm.NewID(),
			Label: labels[rng.Intn(len(labels))],
			Properties: epgm.Properties{}.
				Set("color", epgm.PVString(colors[rng.Intn(len(colors))])).
				Set("rank", epgm.PVInt(int64(rng.Intn(5)))),
		}
	}
	etypes := []string{"x", "y"}
	edges := make([]epgm.Edge, ne)
	for i := range edges {
		edges[i] = epgm.Edge{
			ID:     epgm.NewID(),
			Label:  etypes[rng.Intn(len(etypes))],
			Source: vertices[rng.Intn(nv)].ID,
			Target: vertices[rng.Intn(nv)].ID,
			Properties: epgm.Properties{}.
				Set("w", epgm.PVInt(int64(rng.Intn(3)))),
		}
	}
	return epgm.GraphFromSlices(env, "Random", vertices, edges)
}

func TestFuzzAgainstReference(t *testing.T) {
	queries := []string{
		`MATCH (a:A)-[e:x]->(b) RETURN *`,
		`MATCH (a)-[e:x]->(b)-[f:y]->(c) RETURN *`,
		`MATCH (a:A)-[e]->(b:B) WHERE a.color = b.color RETURN *`,
		`MATCH (a)-[e]->(a) RETURN *`,
		`MATCH (a:A)-[e:x*1..2]->(b) RETURN *`,
		`MATCH (a)-[e:x*0..2]->(b:B) RETURN *`,
		`MATCH (a)-[e1:x]->(b), (b)-[e2]->(c), (a)-[e3]->(c) RETURN *`,
		`MATCH (a)-[e]->(b) WHERE a.rank < b.rank AND e.w = 1 RETURN *`,
		`MATCH (a)-[e]-(b:B) RETURN *`,
		`MATCH (a:A), (b:B) WHERE a.color = b.color RETURN *`,
		`MATCH (a)-[e:y*1..3]->(b) WHERE a.rank >= 3 RETURN *`,
	}
	morphs := []Config{
		{Vertex: operators.Homomorphism, Edge: operators.Homomorphism},
		{Vertex: operators.Homomorphism, Edge: operators.Isomorphism},
		{Vertex: operators.Isomorphism, Edge: operators.Isomorphism},
		{Vertex: operators.Isomorphism, Edge: operators.Homomorphism},
	}
	for seed := 0; seed < 3; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := randomGraph(rng, 1+seed, 12, 20)
		for _, q := range queries {
			for _, cfg := range morphs {
				t.Run(fmt.Sprintf("seed%d/%s/%s%s", seed, q[:20], cfg.Vertex, cfg.Edge), func(t *testing.T) {
					compareWithReference(t, g, q, cfg)
				})
			}
		}
	}
}

func TestExplainListsOperators(t *testing.T) {
	g := figure1(2)
	res := run(t, g, `MATCH (p1:Person)-[e:knows*1..3]->(p2:Person) WHERE p1.gender <> p2.gender RETURN *`, Config{})
	plan := res.Explain()
	for _, frag := range []string{"ExpandEmbeddings", "FilterAndProjectVertices", "rows"} {
		if !contains(plan, frag) {
			t.Fatalf("explain missing %q:\n%s", frag, plan)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestExecuteErrors(t *testing.T) {
	g := figure1(1)
	if _, err := Execute(g, `MATCH (a WHERE`, Config{}); err == nil {
		t.Fatal("syntax error not reported")
	}
	if _, err := Execute(g, `MATCH (a) WHERE b.x = 1 RETURN *`, Config{}); err == nil {
		t.Fatal("semantic error not reported")
	}
}
