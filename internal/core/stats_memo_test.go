package core

import (
	"testing"

	"gradoop/internal/operators"
)

// TestStatsCollectedOnceAcrossQueries is the regression test for repeated
// on-the-fly statistics collection: Execute with cfg.Stats == nil used to
// re-collect statistics on every call for the same graph; the memo must
// collect exactly once across N queries.
func TestStatsCollectedOnceAcrossQueries(t *testing.T) {
	g := figure1(2)
	before := StatsCollections()
	for i := 0; i < 5; i++ {
		res, err := Execute(g, `MATCH (p:Person)-[:knows]->(q:Person) RETURN p.name`,
			Config{Vertex: operators.Homomorphism, Edge: operators.Isomorphism})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != 5 {
			t.Fatalf("count=%d want 5", res.Count())
		}
	}
	if d := StatsCollections() - before; d != 1 {
		t.Fatalf("stats collected %d times across 5 queries on one graph, want 1", d)
	}

	// A different graph is a different memo entry: one more collection.
	g2 := figure1(2)
	if _, err := Execute(g2, `MATCH (p:Person) RETURN p.name`,
		Config{Vertex: operators.Homomorphism, Edge: operators.Isomorphism}); err != nil {
		t.Fatal(err)
	}
	if d := StatsCollections() - before; d != 2 {
		t.Fatalf("stats collected %d times across two graphs, want 2", d)
	}
}
