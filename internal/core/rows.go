package core

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/cypher"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

// This file implements the tabular RETURN pipeline: item evaluation over
// embeddings, grouping aggregation (count/sum/min/max/avg), DISTINCT,
// ORDER BY, SKIP and LIMIT. Neo4j evaluates the same clauses; the paper's
// operator itself returns graph collections, so these modifiers apply only
// to the Rows view.

// valueOf evaluates a RETURN/ORDER BY expression against one embedding.
// Bare variables yield the bound element id (paths render as id lists).
func (r *Result) valueOf(e cypher.Expr, emb embedding.Embedding) epgm.PropertyValue {
	if ref, ok := e.(*cypher.VarRef); ok {
		if c, ok := r.Meta.Column(ref.Var); ok {
			if emb.IsNullAt(c) {
				return epgm.Null
			}
			if r.Meta.Kind(c) == embedding.PathEntry {
				return epgm.PVString(fmt.Sprintf("%v", emb.Path(c)))
			}
			return epgm.PVInt(int64(emb.ID(c)))
		}
		return epgm.Null
	}
	lookup := func(variable, key string) epgm.PropertyValue {
		if pc, ok := r.Meta.PropColumn(variable, key); ok {
			return emb.Prop(pc)
		}
		return epgm.Null
	}
	return cypher.EvalValue(e, lookup)
}

// Rows materializes the RETURN clause as a table: item evaluation (for
// RETURN * one column per non-anonymous variable), aggregation when items
// contain aggregate functions, then DISTINCT, ORDER BY, SKIP and LIMIT.
func (r *Result) Rows() []Row {
	ret := r.QueryGraph.Return
	embeddings := r.Embeddings.Collect()

	var columns []string
	var rows [][]epgm.PropertyValue
	var sortKeys [][]epgm.PropertyValue // parallel to rows, nil when unused

	sortByRowColumn := r.sortColumnResolver()

	if hasAggregates(ret) {
		columns, rows = r.aggregateRows(embeddings)
	} else {
		columns = r.returnColumns()
		exprs := r.returnExprs()
		// Sort expressions that do not name an output column are evaluated
		// per embedding alongside the row.
		var extraSort []cypher.Expr
		for _, s := range ret.OrderBy {
			if _, ok := sortByRowColumn(s.Expr, columns); !ok {
				extraSort = append(extraSort, s.Expr)
			}
		}
		for _, emb := range embeddings {
			vals := make([]epgm.PropertyValue, len(exprs))
			for i, e := range exprs {
				vals[i] = r.valueOf(e, emb)
			}
			rows = append(rows, vals)
			if len(extraSort) > 0 {
				keys := make([]epgm.PropertyValue, len(extraSort))
				for i, e := range extraSort {
					keys[i] = r.valueOf(e, emb)
				}
				sortKeys = append(sortKeys, keys)
			}
		}
	}

	if ret.Distinct {
		rows, sortKeys = distinctRows(rows, sortKeys)
	}
	if len(ret.OrderBy) > 0 {
		r.orderRows(ret.OrderBy, columns, rows, sortKeys, sortByRowColumn)
	}
	rows = applySkipLimit(rows, ret.Skip, ret.Limit)

	out := make([]Row, len(rows))
	for i, vals := range rows {
		out[i] = Row{Columns: columns, Values: vals}
	}
	return out
}

// returnColumns lists the output column names.
func (r *Result) returnColumns() []string {
	ret := r.QueryGraph.Return
	if !ret.Star {
		columns := make([]string, len(ret.Items))
		for i, item := range ret.Items {
			columns[i] = item.Name()
		}
		return columns
	}
	var columns []string
	for c := 0; c < r.Meta.Columns(); c++ {
		v := r.Meta.Var(c)
		if qv, ok := r.QueryGraph.VertexByVar(v); ok && qv.Anonymous {
			continue
		}
		if qe, ok := r.QueryGraph.EdgeByVar(v); ok && qe.Anonymous {
			continue
		}
		columns = append(columns, v)
	}
	return columns
}

// returnExprs lists the expressions producing each output column.
func (r *Result) returnExprs() []cypher.Expr {
	ret := r.QueryGraph.Return
	if !ret.Star {
		exprs := make([]cypher.Expr, len(ret.Items))
		for i, item := range ret.Items {
			exprs[i] = item.Expr
		}
		return exprs
	}
	var exprs []cypher.Expr
	for _, name := range r.returnColumns() {
		exprs = append(exprs, &cypher.VarRef{Var: name})
	}
	return exprs
}

func hasAggregates(ret cypher.ReturnClause) bool {
	for _, item := range ret.Items {
		if fc, ok := item.Expr.(*cypher.FuncCall); ok && fc.Aggregate() {
			return true
		}
	}
	return false
}

// aggState folds one aggregate function over a group.
type aggState struct {
	fn      *cypher.FuncCall
	count   int64
	sum     float64
	intOnly bool
	extreme epgm.PropertyValue // min/max
	seen    bool
}

func newAggState(fn *cypher.FuncCall) *aggState {
	return &aggState{fn: fn, intOnly: true}
}

func (a *aggState) add(v epgm.PropertyValue) {
	switch a.fn.Name {
	case "count":
		if a.fn.Star || !v.IsNull() {
			a.count++
		}
	case "sum", "avg":
		if v.IsNull() {
			return
		}
		if v.Type() != epgm.TypeInt64 {
			a.intOnly = false
		}
		a.sum += v.Float()
		a.count++
	case "min":
		if v.IsNull() {
			return
		}
		if !a.seen {
			a.extreme, a.seen = v, true
			return
		}
		if c, ok := v.Compare(a.extreme); ok && c < 0 {
			a.extreme = v
		}
	case "max":
		if v.IsNull() {
			return
		}
		if !a.seen {
			a.extreme, a.seen = v, true
			return
		}
		if c, ok := v.Compare(a.extreme); ok && c > 0 {
			a.extreme = v
		}
	}
}

func (a *aggState) result() epgm.PropertyValue {
	switch a.fn.Name {
	case "count":
		return epgm.PVInt(a.count)
	case "sum":
		if a.intOnly {
			return epgm.PVInt(int64(a.sum))
		}
		return epgm.PVFloat(a.sum)
	case "avg":
		if a.count == 0 {
			return epgm.Null
		}
		return epgm.PVFloat(a.sum / float64(a.count))
	default: // min, max
		if !a.seen {
			return epgm.Null
		}
		return a.extreme
	}
}

// aggregateRows implements implicit grouping: non-aggregate items form the
// group key, aggregate items fold over each group. Groups appear in
// first-occurrence order.
func (r *Result) aggregateRows(embeddings []embedding.Embedding) ([]string, [][]epgm.PropertyValue) {
	ret := r.QueryGraph.Return
	columns := make([]string, len(ret.Items))
	for i, item := range ret.Items {
		columns[i] = item.Name()
	}
	type group struct {
		keyVals []epgm.PropertyValue
		aggs    map[int]*aggState
	}
	groups := map[string]*group{}
	var order []string

	var keyIdx, aggIdx []int
	for i, item := range ret.Items {
		if fc, ok := item.Expr.(*cypher.FuncCall); ok && fc.Aggregate() {
			aggIdx = append(aggIdx, i)
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	for _, emb := range embeddings {
		keyVals := make([]epgm.PropertyValue, len(keyIdx))
		var kb strings.Builder
		for i, idx := range keyIdx {
			keyVals[i] = r.valueOf(ret.Items[idx].Expr, emb)
			kb.WriteString(valueKey(keyVals[i]))
			kb.WriteByte(0)
		}
		key := kb.String()
		gr, ok := groups[key]
		if !ok {
			gr = &group{keyVals: keyVals, aggs: map[int]*aggState{}}
			for _, idx := range aggIdx {
				gr.aggs[idx] = newAggState(ret.Items[idx].Expr.(*cypher.FuncCall))
			}
			groups[key] = gr
			order = append(order, key)
		}
		for _, idx := range aggIdx {
			fc := ret.Items[idx].Expr.(*cypher.FuncCall)
			var v epgm.PropertyValue
			if !fc.Star {
				v = r.valueOf(fc.Arg, emb)
			}
			gr.aggs[idx].add(v)
		}
	}

	rows := make([][]epgm.PropertyValue, 0, len(order))
	for _, key := range order {
		gr := groups[key]
		vals := make([]epgm.PropertyValue, len(ret.Items))
		for i, idx := range keyIdx {
			vals[idx] = gr.keyVals[i]
		}
		for _, idx := range aggIdx {
			vals[idx] = gr.aggs[idx].result()
		}
		rows = append(rows, vals)
	}
	return columns, rows
}

// valueKey renders a property value for grouping/distinct keys, including
// its type so 1 and "1" stay distinct.
func valueKey(v epgm.PropertyValue) string {
	return fmt.Sprintf("%d:%s", v.Type(), v.String())
}

func distinctRows(rows [][]epgm.PropertyValue, sortKeys [][]epgm.PropertyValue) ([][]epgm.PropertyValue, [][]epgm.PropertyValue) {
	seen := map[string]struct{}{}
	outRows := rows[:0:0]
	var outKeys [][]epgm.PropertyValue
	for i, vals := range rows {
		var kb strings.Builder
		for _, v := range vals {
			kb.WriteString(valueKey(v))
			kb.WriteByte(0)
		}
		key := kb.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		outRows = append(outRows, vals)
		if sortKeys != nil {
			outKeys = append(outKeys, sortKeys[i])
		}
	}
	if sortKeys == nil {
		return outRows, nil
	}
	return outRows, outKeys
}

// sortColumnResolver matches a sort expression to an output column: by
// alias name or by textual expression equality.
func (r *Result) sortColumnResolver() func(e cypher.Expr, columns []string) (int, bool) {
	return func(e cypher.Expr, columns []string) (int, bool) {
		if ref, ok := e.(*cypher.VarRef); ok {
			for i, c := range columns {
				if c == ref.Var {
					return i, true
				}
			}
		}
		text := cypher.ExprString(e)
		for i, c := range columns {
			if c == text {
				return i, true
			}
		}
		return 0, false
	}
}

// orderRows sorts rows in place by the ORDER BY items. Sort expressions
// naming output columns compare row values; others use the pre-computed
// per-embedding sort keys (only available without aggregation).
func (r *Result) orderRows(orderBy []cypher.SortItem, columns []string,
	rows, sortKeys [][]epgm.PropertyValue, resolve func(cypher.Expr, []string) (int, bool)) {

	type plan struct {
		rowCol int // -1 when using sortKeys
		keyCol int
		desc   bool
	}
	plans := make([]plan, 0, len(orderBy))
	extra := 0
	for _, s := range orderBy {
		if col, ok := resolve(s.Expr, columns); ok {
			plans = append(plans, plan{rowCol: col, keyCol: -1, desc: s.Desc})
			continue
		}
		plans = append(plans, plan{rowCol: -1, keyCol: extra, desc: s.Desc})
		extra++
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	valueAt := func(p plan, i int) epgm.PropertyValue {
		if p.rowCol >= 0 {
			return rows[idx[i]][p.rowCol]
		}
		if sortKeys == nil || p.keyCol >= len(sortKeys[idx[i]]) {
			return epgm.Null
		}
		return sortKeys[idx[i]][p.keyCol]
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, p := range plans {
			va, vb := valueAt(p, a), valueAt(p, b)
			// Nulls sort last regardless of direction.
			if va.IsNull() && vb.IsNull() {
				continue
			}
			if va.IsNull() {
				return false
			}
			if vb.IsNull() {
				return true
			}
			c, ok := va.Compare(vb)
			if !ok || c == 0 {
				continue
			}
			if p.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([][]epgm.PropertyValue, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
}

func applySkipLimit(rows [][]epgm.PropertyValue, skip, limit int64) [][]epgm.PropertyValue {
	if skip > 0 {
		if skip >= int64(len(rows)) {
			return nil
		}
		rows = rows[skip:]
	}
	if limit >= 0 && limit < int64(len(rows)) {
		rows = rows[:limit]
	}
	return rows
}
