package core

import (
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// TestQueriesOnInconsistentGraph verifies that dangling edges (endpoints
// missing from the vertex dataset) degrade gracefully: the joins simply
// find no partner, no panic, no phantom matches.
func TestQueriesOnInconsistentGraph(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	a := epgm.Vertex{ID: epgm.NewID(), Label: "P"}
	b := epgm.Vertex{ID: epgm.NewID(), Label: "P"}
	ghost := epgm.NewID() // never materialized as a vertex
	g := epgm.NewLogicalGraph(env, epgm.GraphHead{ID: epgm.NewID()},
		dataflow.FromSlice(env, []epgm.Vertex{a, b}),
		dataflow.FromSlice(env, []epgm.Edge{
			{ID: epgm.NewID(), Label: "e", Source: a.ID, Target: b.ID},
			{ID: epgm.NewID(), Label: "e", Source: a.ID, Target: ghost},
			{ID: epgm.NewID(), Label: "e", Source: ghost, Target: b.ID},
		}))
	if err := g.Verify(); err == nil {
		t.Fatal("Verify should flag the dangling edges")
	}
	res, err := Execute(g, `MATCH (x:P)-[:e]->(y:P) RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("dangling edges must not match: %d", res.Count())
	}
	// Var-length expansion across the ghost vertex also terminates: the
	// chain a->ghost->b exists in the edge set, and the expansion itself
	// only consults edges (endpoint predicates are joins with vertex
	// leaves), so the 2-hop path through the ghost appears for (x)->(y)
	// but the ghost never binds a labeled query vertex.
	res2, err := Execute(g, `MATCH (x:P)-[e:e*2..2]->(y:P) RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count() != 1 {
		t.Fatalf("2-hop through dangling endpoint: %d", res2.Count())
	}
	res3, err := Execute(g, `MATCH (x:P)-[:e]->(mid:P)-[:e]->(y:P) RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Count() != 0 {
		t.Fatalf("ghost midpoint must not bind a vertex variable: %d", res3.Count())
	}
}

// TestEmptyGraphQueries exercises every operator class on an empty graph.
func TestEmptyGraphQueries(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(3))
	g := epgm.NewLogicalGraph(env, epgm.GraphHead{ID: epgm.NewID()},
		dataflow.Empty[epgm.Vertex](env), dataflow.Empty[epgm.Edge](env))
	for _, q := range []string{
		`MATCH (a) RETURN *`,
		`MATCH (a:X)-[:y]->(b) RETURN *`,
		`MATCH (a)-[e:x*1..3]->(b) RETURN *`,
		`MATCH (a) OPTIONAL MATCH (a)-[:x]->(b) RETURN *`,
		`MATCH (a) WHERE NOT exists((a)-[:x]->()) RETURN count(*)`,
		`MATCH (a), (b) RETURN a ORDER BY a.x LIMIT 3`,
	} {
		res, err := Execute(g, q, Config{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if q[len(q)-1] == '*' && res.Count() != 0 {
			t.Fatalf("%s: matches on empty graph", q)
		}
		res.Rows() // must not panic
	}
}
