package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gradoop/internal/baseline"
	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
)

// denseGraph builds a complete directed graph over n Person vertices —
// small, but with ~n^k k-hop paths it makes an unbounded variable-length
// expansion effectively infinite under homomorphism.
func denseGraph(env *dataflow.Env, n int) *epgm.LogicalGraph {
	vs := make([]epgm.Vertex, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, epgm.Vertex{ID: epgm.NewID(), Label: "Person"})
	}
	var es []epgm.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			es = append(es, epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: vs[i].ID, Target: vs[j].ID})
		}
	}
	return epgm.NewLogicalGraph(env, epgm.GraphHead{ID: epgm.NewID()},
		dataflow.FromSlice(env, vs), dataflow.FromSlice(env, es))
}

// ringElements builds the elements of a deterministic sparse graph — a
// ring of n Person vertices with chord edges, enough structure for
// multi-stage plans. The slices can be wrapped into graphs on several
// environments so runs share identical element identities.
func ringElements(n int) ([]epgm.Vertex, []epgm.Edge) {
	vs := make([]epgm.Vertex, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, epgm.Vertex{
			ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("i", epgm.PVInt(int64(i))),
		})
	}
	var es []epgm.Edge
	for i := 0; i < n; i++ {
		es = append(es, epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: vs[i].ID, Target: vs[(i+1)%n].ID})
		es = append(es, epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: vs[i].ID, Target: vs[(i*7+3)%n].ID})
	}
	return vs, es
}

// ringGraph wraps ringElements into a logical graph on env.
func ringGraph(env *dataflow.Env, n int) *epgm.LogicalGraph {
	vs, es := ringElements(n)
	return epgm.NewLogicalGraph(env, epgm.GraphHead{ID: epgm.NewID()},
		dataflow.FromSlice(env, vs), dataflow.FromSlice(env, es))
}

// TestQueryTimeoutAbortsExpansion: a runaway variable-length expansion on a
// dense graph is cancelled mid-stage by Config.Timeout and returns
// context.DeadlineExceeded promptly, with partial metrics intact. Without
// the timeout the query would enumerate ~24^10 homomorphic paths.
func TestQueryTimeoutAbortsExpansion(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	g := denseGraph(env, 24)
	st := stats.Collect(g)
	env.ResetMetrics()

	start := time.Now()
	_, err := Execute(g, `MATCH (a)-[e:knows*1..10]->(b) RETURN *`, Config{
		Stats:   st,
		Timeout: 50 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %s; the expansion must abort mid-stage", elapsed)
	}
	if env.Metrics().Stages == 0 {
		t.Error("partial metrics should survive the abort")
	}
}

// TestQueryContextCancellation: an external context cancels a running query.
func TestQueryContextCancellation(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	g := denseGraph(env, 24)
	st := stats.Collect(g)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Execute(g, `MATCH (a)-[e:knows*1..10]->(b) RETURN *`, Config{
		Stats:   st,
		Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestInjectedFailureRecoveryMatchesOracle: a query executed under injected
// worker failures recovers transparently and produces results bit-identical
// to a failure-free run — and the match count agrees with the brute-force
// baseline oracle.
func TestInjectedFailureRecoveryMatchesOracle(t *testing.T) {
	const workers = 4
	query := `MATCH (x:Person)-[e:knows*1..3]->(y:Person) WHERE x.i < 10 RETURN *`
	morph := operators.Morphism{Vertex: operators.Homomorphism, Edge: operators.Isomorphism}
	cfg := Config{Vertex: morph.Vertex, Edge: morph.Edge}

	vs, es := ringElements(40)
	run := func(plan *dataflow.FaultPlan) (*Result, *dataflow.Env, error) {
		env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
		g := epgm.NewLogicalGraph(env, epgm.GraphHead{ID: epgm.NewID()},
			dataflow.FromSlice(env, vs), dataflow.FromSlice(env, es))
		cfg := cfg
		cfg.Stats = stats.Collect(g)
		env.ResetMetrics()
		env.InjectFaults(plan)
		res, err := Execute(g, query, cfg)
		return res, env, err
	}

	clean, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Embeddings.Collect()

	kills := []dataflow.Kill{
		{Stage: 1, Partition: 0},
		{Stage: 2, Partition: 1},
		{Stage: 3, Partition: 2, Times: 2},
		{Stage: 5, Partition: 3},
		{Stage: 8, Partition: 0},
	}
	faulty, env, err := run(&dataflow.FaultPlan{Kills: kills})
	if err != nil {
		t.Fatalf("recovery must be transparent, got %v", err)
	}
	got := faulty.Embeddings.Collect()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("faulty run differs from failure-free run: %d vs %d embeddings", len(got), len(want))
	}
	m := env.Metrics()
	if m.Retries == 0 || m.RetriedStages == 0 {
		t.Errorf("expected observed retries, got retries=%d retriedStages=%d", m.Retries, m.RetriedStages)
	}

	// Independent correctness check against the brute-force oracle.
	ast, err := cypher.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	qgraph, err := cypher.BuildQueryGraph(ast, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := baseline.NewReference(faulty.Graph).Count(qgraph, morph)
	if int64(oracle) != faulty.Count() {
		t.Fatalf("oracle disagrees: engine %d, oracle %d", faulty.Count(), oracle)
	}
}

// TestWorkerFailurePastRetryBudget: a worker that keeps dying surfaces as a
// typed *dataflow.JobError from core.Execute instead of crashing or hanging.
func TestWorkerFailurePastRetryBudget(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	g := ringGraph(env, 20)
	st := stats.Collect(g)
	env.ResetMetrics()
	env.InjectFaults(&dataflow.FaultPlan{
		MaxRetries: 1,
		Kills:      []dataflow.Kill{{Stage: 1, Partition: 0, Times: 100}},
	})
	_, err := Execute(g, `MATCH (x:Person)-[:knows]->(y:Person) RETURN *`, Config{Stats: st})
	var je *dataflow.JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *dataflow.JobError, got %v", err)
	}
	if je.Stage != 1 || je.Partition != 0 {
		t.Errorf("JobError should name the failed stage/partition, got %+v", je)
	}
	// The env recovers for the next query after the failed one.
	res, err := Execute(g, `MATCH (x:Person) RETURN *`, Config{Stats: st})
	if err != nil {
		t.Fatalf("env should accept new jobs after a failure: %v", err)
	}
	if res.Count() != 20 {
		t.Errorf("post-failure query broken: %d", res.Count())
	}
}

// panicEnv builds a graph whose property data makes a downstream UDF panic
// deterministically inside the dataflow job, proving that a panic raised in
// the middle of query execution surfaces as a JobError from core.Execute
// rather than crashing the process. The panic is raised by a FlatMap over
// the result embeddings (the same containment path any operator UDF uses).
func TestUDFPanicSurfacesFromExecute(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	g := ringGraph(env, 10)
	st := stats.Collect(g)
	env.ResetMetrics()

	res, err := Execute(g, `MATCH (x:Person)-[:knows]->(y:Person) RETURN *`, Config{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a buggy post-processing UDF running on the same environment
	// as part of the job pipeline.
	env.Begin(nil)
	dataflow.Map(res.Embeddings, func(e embedding.Embedding) int {
		panic(fmt.Sprintf("corrupt embedding of %d bytes", e.SizeBytes()))
	})
	var je *dataflow.JobError
	if fErr := env.Finish(); !errors.As(fErr, &je) {
		t.Fatalf("want *dataflow.JobError from a panicking UDF, got %v", fErr)
	}
}
