package core

import (
	"testing"

	"gradoop/internal/operators"
)

func TestExistsSemiJoin(t *testing.T) {
	g := optionalGraph(3) // ann knows ben; ben knows cy; ann/ben like movies
	// Persons who like at least one movie.
	rows := rowsOf(t, g, `
		MATCH (p:Person) WHERE exists((p)-[:likes]->(:Movie))
		RETURN p.name ORDER BY p.name`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Ann" || rows[1].Values[0].Str() != "Ben" {
		t.Fatalf("exists: %v", rows)
	}
}

func TestNotExistsAntiJoin(t *testing.T) {
	g := optionalGraph(2)
	rows := rowsOf(t, g, `
		MATCH (p:Person) WHERE NOT exists((p)-[:likes]->(:Movie))
		RETURN p.name ORDER BY p.name`)
	if len(rows) != 2 || rows[0].Values[0].Str() != "Cy" || rows[1].Values[0].Str() != "Dora" {
		t.Fatalf("not exists: %v", rows)
	}
}

func TestExistsCombinedWithPredicates(t *testing.T) {
	g := optionalGraph(2)
	// Persons with a liked movie AND a friend: only ann (ben has Blade but
	// knows cy... ben knows cy too). ann likes Alien & knows ben; ben likes
	// two movies & knows cy => both qualify; restrict by name.
	rows := rowsOf(t, g, `
		MATCH (p:Person)
		WHERE exists((p)-[:likes]->(:Movie)) AND exists((p)-[:knows]->(:Person))
		  AND p.name <> 'Ben'
		RETURN p.name`)
	if len(rows) != 1 || rows[0].Values[0].Str() != "Ann" {
		t.Fatalf("combined exists: %v", rows)
	}
}

func TestExistsAgainstBoundPair(t *testing.T) {
	g := optionalGraph(2)
	// Pairs of persons where both like the same movie: exists with two
	// bound endpoints and a shared anonymous midpoint... the pattern
	// (p)-[:likes]->(m)<-[:likes]-(q) inside exists.
	rows := rowsOf(t, g, `
		MATCH (p:Person), (q:Person)
		WHERE p.name < q.name AND exists((p)-[:likes]->(:Movie)<-[:likes]-(q))
		RETURN p.name, q.name`)
	if len(rows) != 1 || rows[0].Values[0].Str() != "Ann" || rows[0].Values[1].Str() != "Ben" {
		t.Fatalf("bound-pair exists: %v", rows)
	}
}

func TestExistsRespectsMorphism(t *testing.T) {
	g := optionalGraph(2)
	// Under edge isomorphism, the edge inside exists must differ from the
	// matched edge: persons whose knows edge has a parallel alternative do
	// not exist here, so requiring another knows edge from p to a person
	// eliminates everyone when the only edge is already bound... ann knows
	// only ben, so exists((p)-[:knows]->()) with the same edge bound
	// outside fails under ISO but succeeds under HOMO.
	homo, err := Execute(g, `
		MATCH (p:Person {name: 'Ann'})-[:knows]->(x:Person)
		WHERE exists((p)-[:knows]->(:Person))
		RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if homo.Count() != 1 {
		t.Fatalf("homo exists: %d", homo.Count())
	}
	iso, err := Execute(g, `
		MATCH (p:Person {name: 'Ann'})-[:knows]->(x:Person)
		WHERE exists((p)-[:knows]->(:Person))
		RETURN *`, Config{Edge: operators.Isomorphism})
	if err != nil {
		t.Fatal(err)
	}
	if iso.Count() != 0 {
		t.Fatalf("iso exists should require a distinct edge: %d", iso.Count())
	}
}

func TestExistsErrors(t *testing.T) {
	g := optionalGraph(1)
	cases := []string{
		// Nested in OR: unsupported.
		`MATCH (p:Person) WHERE p.name = 'x' OR exists((p)-[:likes]->()) RETURN *`,
		// Vertex-only pattern.
		`MATCH (p:Person) WHERE exists((p)) RETURN *`,
		// Var-length inside exists.
		`MATCH (p:Person) WHERE exists((p)-[:knows*1..2]->()) RETURN *`,
		// In OPTIONAL MATCH WHERE.
		`MATCH (p:Person) OPTIONAL MATCH (p)-[:knows]->(q) WHERE exists((q)-[:likes]->()) RETURN *`,
	}
	for _, q := range cases {
		if _, err := Execute(g, q, Config{}); err == nil {
			t.Errorf("Execute(%q): expected error", q)
		}
	}
}

func TestExistsExplainShowsSemiJoin(t *testing.T) {
	g := optionalGraph(1)
	res, err := Execute(g, `MATCH (p:Person) WHERE NOT exists((p)-[:likes]->(:Movie)) RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.Explain(), "AntiJoinEmbeddings") {
		t.Fatalf("plan:\n%s", res.Explain())
	}
}
