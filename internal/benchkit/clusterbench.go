package benchkit

import (
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"gradoop/internal/cluster"
	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/session"
)

// ClusterWorkerCounts is the process sweep of the distributed-execution
// experiment: each count is a roster of real worker runtimes reached over
// TCP. Tests shrink it for speed.
var ClusterWorkerCounts = []int{1, 2, 4}

// ClusterRequests is the request count per (query, topology) cell. Tests
// shrink it for speed.
var ClusterRequests = 20

// clusterPartitions fixes the logical partition count for every cell. The
// plan is a deterministic function of (query, stats, partitions), so pinning
// it means every topology — including the in-process baseline — executes
// the identical plan and the comparison isolates the transport.
const clusterPartitions = 4

// ClusterMeasurement is one cell of the distributed-execution matrix.
// Workers == 0 is the in-process baseline (no coordinator, no sockets).
// ModelBytes is the cost model's cross-partition byte charge summed over
// the shuffle stages of every request; WireBytes is what those shuffles
// actually framed onto worker sockets (encoded embeddings plus frame
// headers, minus process-local partition pairs that never touch a socket).
type ClusterMeasurement struct {
	Query      QueryID
	Workers    int
	Requests   int
	Count      int64
	QPS        float64
	P50, P99   time.Duration
	ModelBytes int64
	WireBytes  int64
}

// RunCluster measures one cell: a session backed by `workers` in-process
// worker runtimes behind a coordinator (or the plain engine when workers
// is 0), draining `requests` sequential executions of one query. The
// result cache is off so every request is a real distributed execution;
// the plan cache stays on, which is the serving configuration. Worker
// telemetry shipping is on, matching the default deployment.
func (r *Runner) RunCluster(q QueryID, sf float64, workers, requests int) (ClusterMeasurement, error) {
	return r.RunClusterTelemetry(q, sf, workers, requests, true)
}

// RunClusterTelemetry is RunCluster with the workers' telemetry shipping
// made explicit, for measuring the observability plane's own cost.
func (r *Runner) RunClusterTelemetry(q QueryID, sf float64, workers, requests int, telemetry bool) (ClusterMeasurement, error) {
	p := r.Prepare(sf, clusterPartitions)
	opts := session.Options{Workers: clusterPartitions, NoResultCache: true}

	if workers > 0 {
		data := session.NewGraphData(p.Graph())
		ws := make([]*cluster.Worker, workers)
		addrs := make([]string, workers)
		for i := range ws {
			w := cluster.NewWorkerWith(fmt.Sprintf("bench-w%d", i), data, cluster.WorkerOptions{
				Metrics:     obs.NewRegistry(),
				NoTelemetry: !telemetry,
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return ClusterMeasurement{}, fmt.Errorf("benchkit: cluster listen: %w", err)
			}
			go w.Serve(ln)
			defer w.Close()
			ws[i] = w
			addrs[i] = ln.Addr().String()
		}
		coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: clusterPartitions})
		if err != nil {
			return ClusterMeasurement{}, fmt.Errorf("benchkit: cluster coordinator: %w", err)
		}
		defer coord.Close()
		opts.Remote = coord
	}
	s := session.New(p.Graph(), opts)

	req := session.Request{Query: q.Text()}
	if q.Operational() {
		req.Params = map[string]epgm.PropertyValue{"firstName": epgm.PVString(p.FirstName(Low))}
	}

	m := ClusterMeasurement{Query: q, Workers: workers, Requests: requests}
	latencies := make([]time.Duration, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		resp, err := s.Execute(req)
		if err != nil {
			return ClusterMeasurement{}, fmt.Errorf("benchkit: cluster %s (%d workers): %w", q, workers, err)
		}
		latencies[i] = time.Since(t0)
		m.Count = resp.Count
		if resp.Cluster != nil {
			for _, st := range resp.Cluster.Stages {
				if st.Shuffle {
					m.ModelBytes += st.ModelBytes
					m.WireBytes += st.WireBytes
				}
			}
		}
	}
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	m.QPS = float64(requests) / wall.Seconds()
	m.P50 = latencies[requests/2]
	m.P99 = latencies[(requests*99)/100]
	return m, nil
}

// Cluster runs the distributed-execution experiment: each query's
// serving throughput and tail latency across 1, 2 and 4 worker processes
// set against the in-process engine, plus the cost model's predicted
// shuffle volume against the bytes the shuffles actually put on the wire.
// Every cell must return the baseline's result count — the bit-identity
// guarantee, checked here on the cheap cardinality surface.
func Cluster(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Cluster: multi-process execution vs in-process engine (SF%g, %d partitions, %d requests/cell) ==\n",
		r.SFSmall, clusterPartitions, ClusterRequests)
	fmt.Fprintf(w, "%-6s %-8s %8s %12s %12s %12s %12s %10s %s\n",
		"query", "workers", "qps", "p50", "p99", "modelBytes", "wireBytes", "wire/model", "result")
	for _, q := range []QueryID{Q1, Q4} {
		base, err := r.RunCluster(q, r.SFSmall, 0, ClusterRequests)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %-8s %8.1f %12s %12s %12s %12s %10s %s\n",
			q, "in-proc", base.QPS, fmtDur(base.P50), fmtDur(base.P99), "-", "-", "-", "ok")
		for _, n := range ClusterWorkerCounts {
			m, err := r.RunCluster(q, r.SFSmall, n, ClusterRequests)
			if err != nil {
				return err
			}
			result := "ok"
			if m.Count != base.Count {
				result = fmt.Sprintf("MISMATCH (%d != %d)", m.Count, base.Count)
			}
			ratio := "-"
			if m.ModelBytes > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(m.WireBytes)/float64(m.ModelBytes))
			}
			fmt.Fprintf(w, "%-6s %-8d %8.1f %12s %12s %12d %12d %10s %s\n",
				q, n, m.QPS, fmtDur(m.P50), fmtDur(m.P99), m.ModelBytes, m.WireBytes, ratio, result)
		}
	}

	// The observability plane's own bill: the same 2-worker cell with
	// telemetry shipping on (every job ships spans + a registry snapshot)
	// and off (-no-telemetry; nothing but the done report crosses the
	// wire). Rows must stay bit-identical either way — the off run's count
	// is checked against the on run's.
	fmt.Fprintf(w, "\n-- telemetry shipping overhead (2 workers) --\n")
	fmt.Fprintf(w, "%-6s %-10s %8s %12s %12s %s\n", "query", "telemetry", "qps", "p50", "p99", "result")
	for _, q := range []QueryID{Q1, Q4} {
		on, err := r.RunClusterTelemetry(q, r.SFSmall, 2, ClusterRequests, true)
		if err != nil {
			return err
		}
		off, err := r.RunClusterTelemetry(q, r.SFSmall, 2, ClusterRequests, false)
		if err != nil {
			return err
		}
		result := "ok"
		if on.Count != off.Count {
			result = fmt.Sprintf("MISMATCH (%d != %d)", off.Count, on.Count)
		}
		fmt.Fprintf(w, "%-6s %-10s %8.1f %12s %12s %s\n", q, "on", on.QPS, fmtDur(on.P50), fmtDur(on.P99), "ok")
		fmt.Fprintf(w, "%-6s %-10s %8.1f %12s %12s %s\n", q, "off", off.QPS, fmtDur(off.P50), fmtDur(off.P99), result)
	}
	return nil
}
