// Package benchkit implements the paper's evaluation (§4): the six appendix
// queries, dataset preparation at the two scale factors, and the experiment
// drivers that regenerate every table and figure. Both the bench-runner CLI
// and the testing.B benchmarks are thin wrappers around this package.
package benchkit

import "fmt"

// QueryID names one of the appendix queries.
type QueryID int

// The six benchmark queries.
const (
	Q1 QueryID = iota + 1 // all messages of a person
	Q2                    // posts to a person's comments
	Q3                    // friends that replied to a post
	Q4                    // person profile
	Q5                    // close friends (triangles)
	Q6                    // recommendation
)

// String returns "Q1".."Q6".
func (q QueryID) String() string { return fmt.Sprintf("Q%d", int(q)) }

// Operational reports whether the query is one of the selective,
// parameterized queries 1–3 (as opposed to the analytical queries 4–6).
func (q QueryID) Operational() bool { return q <= Q3 }

// Text returns the Cypher text of a query. Queries 1–3 take the firstName
// selectivity parameter via $firstName.
func (q QueryID) Text() string {
	switch q {
	case Q1:
		return `
			MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
			WHERE person.firstName = $firstName
			RETURN message.creationDate, message.content`
	case Q2:
		return `
			MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
			      (message)-[:replyOf*0..10]->(post:Post)
			WHERE person.firstName = $firstName
			RETURN message.creationDate, message.content,
			       post.creationDate, post.content`
	case Q3:
		return `
			MATCH (p1:Person)-[:knows]->(p2:Person),
			      (p2)<-[:hasCreator]-(comment:Comment),
			      (comment)-[:replyOf*1..10]->(post:Post),
			      (post)-[:hasCreator]->(p1)
			WHERE p1.firstName = $firstName
			RETURN p1.firstName, p1.lastName,
			       p2.firstName, p2.lastName,
			       post.content`
	case Q4:
		return `
			MATCH (person:Person)-[:isLocatedIn]->(city:City),
			      (person)-[:hasInterest]->(tag:Tag),
			      (person)-[:studyAt]->(uni:University),
			      (person)<-[:hasMember|hasModerator]-(forum:Forum)
			RETURN person.firstName, person.lastName,
			       city.name, tag.name, uni.name, forum.title`
	case Q5:
		return `
			MATCH (p1:Person)-[:knows]->(p2:Person),
			      (p2)-[:knows]->(p3:Person),
			      (p1)-[:knows]->(p3)
			RETURN p1.firstName, p1.lastName,
			       p2.firstName, p2.lastName,
			       p3.firstName, p3.lastName`
	case Q6:
		return `
			MATCH (p1:Person)-[:knows]->(p2:Person),
			      (p1)-[:hasInterest]->(t1:Tag),
			      (p2)-[:hasInterest]->(t1),
			      (p2)-[:hasInterest]->(t2:Tag)
			RETURN p1.firstName, p1.lastName, t2.name`
	default:
		panic(fmt.Sprintf("benchkit: unknown query %d", int(q)))
	}
}

// AllQueries lists Q1..Q6.
var AllQueries = []QueryID{Q1, Q2, Q3, Q4, Q5, Q6}

// Selectivity is a predicate selectivity class for queries 1–3. Following
// the paper, "high" selectivity means a rare first name (small result) and
// "low" a very common one (large result).
type Selectivity string

// Selectivity classes.
const (
	High   Selectivity = "high"
	Medium Selectivity = "medium"
	Low    Selectivity = "low"
)

// Selectivities in the paper's table order.
var Selectivities = []Selectivity{High, Medium, Low}

// Table3Patterns are the four sub-patterns of the paper's Table 3
// (intermediate result sizes), parameterized by $firstName.
var Table3Patterns = []struct {
	Name  string
	Query string
}{
	{"(:Person)", `
		MATCH (p:Person) WHERE p.firstName = $firstName RETURN *`},
	{"(:Person)<-[:hasCreator]-(:Comment|Post)", `
		MATCH (p:Person)<-[:hasCreator]-(m:Comment|Post)
		WHERE p.firstName = $firstName RETURN *`},
	{"(:Person)-[:knows]->(:Person)", `
		MATCH (p:Person)-[:knows]->(q:Person)
		WHERE p.firstName = $firstName RETURN *`},
	{"(:Person)-[:knows]->(:Person)<-[:hasCreator]-(:Comment)", `
		MATCH (p:Person)-[:knows]->(q:Person)<-[:hasCreator]-(c:Comment)
		WHERE p.firstName = $firstName RETURN *`},
}
