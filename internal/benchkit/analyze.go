package benchkit

import (
	"fmt"
	"io"
	"os"
	"strings"

	"gradoop/internal/trace"
)

// Analyze runs every benchmark query once with execution tracing enabled
// and prints its EXPLAIN ANALYZE rendering: the physical plan annotated,
// per operator, with estimated vs. actual cardinality, the estimate's
// q-error and the operator's self/simulated time. It is the drill-down
// companion to Table 4 — where that table reports one runtime per query,
// this view attributes it to operators.
//
// When tracePrefix is non-empty a Chrome trace_event timeline is written
// per query to "<prefix>-Q<n>.json" (open in chrome://tracing or Perfetto).
func Analyze(r *Runner, w io.Writer, tracePrefix string) error {
	fmt.Fprintf(w, "== EXPLAIN ANALYZE (4 workers, Q1-3 on SF%g high sel., Q4-6 on SF%g) ==\n", r.SFLarge, r.SFSmall)
	for _, q := range AllQueries {
		sf := r.SFSmall
		if q.Operational() {
			sf = r.SFLarge
		}
		m, res, err := r.RunAnalyzed(q, sf, 4, High)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s: %d matches, sim %s, skew %.2f, shuffled %dB\n",
			q, m.Count, fmtDur(m.SimTime), m.Skew, m.ShuffledBytes)
		fmt.Fprint(w, res.AnalyzedPlan())
		if tracePrefix != "" {
			path := fmt.Sprintf("%s-%s.json", strings.TrimSuffix(tracePrefix, ".json"), q)
			if err := writeChromeFile(path, res.Trace); err != nil {
				return err
			}
			fmt.Fprintf(w, "   trace: %s\n", path)
		}
	}
	return nil
}

// writeChromeFile dumps one collector's Chrome trace_event JSON to path.
func writeChromeFile(path string, c *trace.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
