package benchkit

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gradoop/internal/baseline"
	"gradoop/internal/cypher"
	"gradoop/internal/operators"
	"gradoop/internal/trace"
)

// TestRunAnalyzedMatchesOracle: the actual cardinalities EXPLAIN ANALYZE
// reports must be ground truth — the root operator's actual count on an
// LDBC-sim query is checked against the brute-force reference matcher, and
// every plan line must carry the est/act annotation.
func TestRunAnalyzedMatchesOracle(t *testing.T) {
	r := NewRunner()
	r.SFSmall = 0.05

	m, res, err := r.RunAnalyzed(Q5, r.SFSmall, 3, High)
	if err != nil {
		t.Fatal(err)
	}

	ast, err := cypher.Parse(Q5.Text())
	if err != nil {
		t.Fatal(err)
	}
	qg, err := cypher.BuildQueryGraph(ast, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.NewReference(res.Graph)
	morph := operators.Morphism{Vertex: operators.Homomorphism, Edge: operators.Isomorphism}
	want := int64(ref.Count(qg, morph))
	if m.Count != want {
		t.Fatalf("Q5 engine count %d != oracle %d", m.Count, want)
	}

	rootAct, ok := res.Trace.Op(res.Plan.Root)
	if !ok {
		t.Fatal("root operator missing from trace")
	}
	if rootAct.Rows != want {
		t.Errorf("root actual %d != oracle %d", rootAct.Rows, want)
	}
	analyzed := res.AnalyzedPlan()
	for i, line := range strings.Split(strings.TrimRight(analyzed, "\n"), "\n") {
		if !strings.Contains(line, "~") || !strings.Contains(line, "act=") {
			t.Errorf("plan line %d lacks est/act annotation: %q", i, line)
		}
	}
}

// TestAnalyzeExperiment: the bench experiment must render every query's
// analyzed plan and write one valid Chrome trace file per query.
func TestAnalyzeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all six queries")
	}
	r := NewRunner()
	r.SFSmall, r.SFLarge = 0.02, 0.05
	prefix := filepath.Join(t.TempDir(), "trace")

	var buf bytes.Buffer
	if err := Analyze(r, &buf, prefix); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, q := range AllQueries {
		if !strings.Contains(out, "-- "+q.String()+":") {
			t.Errorf("analyze output missing %s section", q)
		}
		data, err := os.ReadFile(prefix + "-" + q.String() + ".json")
		if err != nil {
			t.Fatalf("%s trace file: %v", q, err)
		}
		var doc trace.ChromeTrace
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s trace is not valid JSON: %v", q, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("%s trace is empty", q)
		}
	}
	if !strings.Contains(out, "act=") {
		t.Error("analyze output carries no actual cardinalities")
	}
}
