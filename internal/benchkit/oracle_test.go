package benchkit

import (
	"testing"

	"gradoop/internal/baseline"
	"gradoop/internal/core"
	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/ldbc"
	"gradoop/internal/operators"
)

// TestPaperQueriesAgainstOracle checks every benchmark query's result
// cardinality against the brute-force reference matcher on a small LDBC
// graph — the engine counts used in EXPERIMENTS.md are ground-truth
// validated, not merely self-consistent.
func TestPaperQueriesAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle comparison is exponential in pattern size")
	}
	env := dataflow.NewEnv(dataflow.DefaultConfig(3))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.02, Seed: 4})
	ref := baseline.NewReference(d.Graph)
	common, medium, rare := d.FirstNamesBySelectivity()

	morph := operators.Morphism{Vertex: operators.Homomorphism, Edge: operators.Isomorphism}
	for _, q := range AllQueries {
		names := []string{""}
		if q.Operational() {
			names = []string{common, medium, rare}
		}
		for _, name := range names {
			var params map[string]epgm.PropertyValue
			if name != "" {
				params = map[string]epgm.PropertyValue{"firstName": epgm.PVString(name)}
			}
			res, err := core.Execute(d.Graph, q.Text(), core.Config{
				Vertex: morph.Vertex, Edge: morph.Edge, Params: params,
			})
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			ast, err := cypher.Parse(q.Text())
			if err != nil {
				t.Fatal(err)
			}
			qg, err := cypher.BuildQueryGraph(ast, params)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Count(qg, morph)
			if got := res.Count(); got != int64(want) {
				t.Fatalf("%s (firstName=%q): engine=%d oracle=%d\n%s",
					q, name, got, want, res.Explain())
			}
		}
	}
}
