package benchkit

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner keeps unit tests fast; the real experiments use NewRunner.
func tinyRunner() *Runner {
	return &Runner{Seed: 2017, SFSmall: 0.02, SFLarge: 0.2, cache: map[string]*prepared{}}
}

func TestAllQueriesExecute(t *testing.T) {
	r := tinyRunner()
	for _, q := range AllQueries {
		m, err := r.Run(q, r.SFSmall, 2, Low)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if m.SimTime <= 0 {
			t.Fatalf("%s: no simulated time", q)
		}
		if !q.Operational() && m.Count == 0 {
			t.Fatalf("%s: analytical query found nothing", q)
		}
	}
}

func TestSelectivityOrdering(t *testing.T) {
	r := tinyRunner()
	// The selectivity classes are defined on person counts (firstName
	// frequency); the (:Person) pattern must order strictly.
	var personCounts []int64
	for _, sel := range []Selectivity{High, Medium, Low} {
		n, err := r.RunPattern(Table3Patterns[0].Query, r.SFLarge, 2, sel)
		if err != nil {
			t.Fatal(err)
		}
		personCounts = append(personCounts, n)
	}
	if !(personCounts[0] <= personCounts[1] && personCounts[1] <= personCounts[2]) {
		t.Fatalf("selectivity ordering violated: high=%d medium=%d low=%d",
			personCounts[0], personCounts[1], personCounts[2])
	}
	// Derived result sizes need not be strictly monotone (a rare name on a
	// hub author can out-message a mid-frequency name), but low selectivity
	// must dominate high by a wide margin.
	high, err := r.Run(Q1, r.SFLarge, 2, High)
	if err != nil {
		t.Fatal(err)
	}
	low, err := r.Run(Q1, r.SFLarge, 2, Low)
	if err != nil {
		t.Fatal(err)
	}
	if low.Count <= 2*high.Count {
		t.Fatalf("low (%d) should far exceed high (%d)", low.Count, high.Count)
	}
}

func TestCountsIndependentOfWorkers(t *testing.T) {
	r := tinyRunner()
	for _, q := range []QueryID{Q1, Q2, Q5} {
		var base int64 = -1
		for _, w := range []int{1, 4} {
			m, err := r.Run(q, r.SFSmall, w, Low)
			if err != nil {
				t.Fatal(err)
			}
			if base == -1 {
				base = m.Count
			} else if m.Count != base {
				t.Fatalf("%s: count differs across workers: %d vs %d", q, base, m.Count)
			}
		}
	}
}

func TestSpeedupWithWorkers(t *testing.T) {
	r := tinyRunner()
	m1, err := r.Run(Q2, r.SFLarge, 1, Low)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := r.Run(Q2, r.SFLarge, 8, Low)
	if err != nil {
		t.Fatal(err)
	}
	if m8.SimTime >= m1.SimTime {
		t.Fatalf("no speedup: 1w=%s 8w=%s", m1.SimTime, m8.SimTime)
	}
}

func TestDataScaling(t *testing.T) {
	r := tinyRunner()
	small, err := r.Run(Q1, r.SFSmall, 4, Low)
	if err != nil {
		t.Fatal(err)
	}
	large, err := r.Run(Q1, r.SFLarge, 4, Low)
	if err != nil {
		t.Fatal(err)
	}
	if large.SimTime <= small.SimTime {
		t.Fatalf("larger data not slower: %s vs %s", small.SimTime, large.SimTime)
	}
}

func TestExperimentReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full (downscaled) experiment drivers")
	}
	r := tinyRunner()
	experiments := []struct {
		name string
		run  func(*Runner, *bytes.Buffer) error
		frag string
	}{
		{"figure3", func(r *Runner, w *bytes.Buffer) error { return Figure3(r, w) }, "Figure 3"},
		{"figure4", func(r *Runner, w *bytes.Buffer) error { return Figure4(r, w) }, "Figure 4"},
		{"figure5", func(r *Runner, w *bytes.Buffer) error { return Figure5(r, w) }, "Figure 5"},
		{"table3", func(r *Runner, w *bytes.Buffer) error { return Table3(r, w) }, "Table 3"},
		{"table4", func(r *Runner, w *bytes.Buffer) error { return Table4(r, w) }, "Table 4"},
		{"cards", func(r *Runner, w *bytes.Buffer) error { return Cardinalities(r, w) }, "cardinalities"},
	}
	for _, e := range experiments {
		var buf bytes.Buffer
		if err := e.run(r, &buf); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if !strings.Contains(buf.String(), e.frag) {
			t.Fatalf("%s: missing %q in output:\n%s", e.name, e.frag, buf.String())
		}
	}
}

func TestExtendedQueriesExecute(t *testing.T) {
	r := tinyRunner()
	p := r.Prepare(r.SFSmall, 2)
	for _, xq := range ExtendedQueries {
		res, err := runExtended(p, xq.Query)
		if err != nil {
			t.Fatalf("%s: %v", xq.Name, err)
		}
		if len(res) == 0 {
			t.Fatalf("%s: no rows", xq.Name)
		}
	}
}

func TestQueryTextsParseable(t *testing.T) {
	for _, q := range AllQueries {
		if q.Text() == "" {
			t.Fatalf("%s has no text", q)
		}
	}
	if Q1.String() != "Q1" || !Q1.Operational() || Q4.Operational() {
		t.Fatal("query metadata")
	}
}
