package benchkit

import (
	"strings"
	"testing"
)

// TestRecoveryExperiment runs the recovery-overhead experiment at a tiny
// scale: every faulty run must match the failure-free baseline count
// (transparent recovery) and injected failures must be observed as retries.
func TestRecoveryExperiment(t *testing.T) {
	orig := RecoveryFailureCounts
	RecoveryFailureCounts = []int{0, 2}
	defer func() { RecoveryFailureCounts = orig }()

	r := NewRunner()
	r.SFSmall = 0.02
	var sb strings.Builder
	if err := Recovery(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("recovery not transparent:\n%s", out)
	}
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "Q4") {
		t.Fatalf("missing queries:\n%s", out)
	}
}

// TestRunRecoveryObservesRetries checks the per-run measurement surface.
func TestRunRecoveryObservesRetries(t *testing.T) {
	r := NewRunner()
	m, err := r.RunRecovery(Q4, 0.02, 4, Low, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Error("expected at least one observed retry from 4 planned kills")
	}
	if m.RecoveryTime == 0 {
		t.Error("recovery time should be charged to the metrics")
	}
}
