package benchkit

import (
	"strings"
	"testing"
)

// TestServeExperiment smoke-tests the full serving experiment at a reduced
// scale: all (mode, concurrency) cells execute without errors, the
// trace-span verification confirms a plan-cache hit skips parse+plan, and
// the admission burst accounts for every request.
func TestServeExperiment(t *testing.T) {
	oldC, oldN := ServeConcurrencies, ServeRequests
	ServeConcurrencies, ServeRequests = []int{1, 4}, 24
	defer func() { ServeConcurrencies, ServeRequests = oldC, oldN }()

	r := NewRunner()
	r.SFSmall = 0.05
	var sb strings.Builder
	if err := Serve(r, &sb); err != nil {
		t.Fatalf("serve experiment: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if strings.Contains(out, "UNEXPECTED") {
		t.Fatalf("trace verification failed:\n%s", out)
	}
	if !strings.Contains(out, "hit skips parse+plan: verified") {
		t.Fatalf("missing trace verification line:\n%s", out)
	}
	if !strings.Contains(out, "registry overhead: QPS") {
		t.Fatalf("missing registry-overhead line:\n%s", out)
	}
}

// TestRunServeOverhead asserts the telemetry pair runs clean in both
// configurations and the enabled run actually executed every request as a
// real job (no result hits in either leg).
func TestRunServeOverhead(t *testing.T) {
	r := NewRunner()
	r.SFSmall = 0.05
	oh, err := r.RunServeOverhead(r.SFSmall, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ServeMeasurement{oh.Disabled, oh.Enabled} {
		if m.Errors != 0 {
			t.Fatalf("%s: %d request errors", m.Mode, m.Errors)
		}
		if m.ResultHits != 0 {
			t.Fatalf("%s: result hits pollute the overhead measurement", m.Mode)
		}
	}
}

// TestRunQStoreOverhead asserts the query-store pair runs clean, every
// request became a real job in both legs, and the enabled leg recorded
// exactly one record per request (checked inside RunQStoreOverhead).
func TestRunQStoreOverhead(t *testing.T) {
	r := NewRunner()
	r.SFSmall = 0.05
	oh, err := r.RunQStoreOverhead(r.SFSmall, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ServeMeasurement{oh.Disabled, oh.Enabled} {
		if m.Errors != 0 {
			t.Fatalf("%s: %d request errors", m.Mode, m.Errors)
		}
		if m.ResultHits != 0 {
			t.Fatalf("%s: result hits pollute the overhead measurement", m.Mode)
		}
	}
}

// TestRunServeCacheModes asserts the cache modes actually change the hit
// ratios: the cached mode sees plan and result hits, -no-plan-cache sees
// zero plan hits, -no-result-cache zero result hits.
func TestRunServeCacheModes(t *testing.T) {
	r := NewRunner()
	r.SFSmall = 0.05
	measure := func(mode ServeMode) ServeMeasurement {
		m, err := r.RunServe(r.SFSmall, mode, 4, 24)
		if err != nil {
			t.Fatalf("%s: %v", mode.Name, err)
		}
		if m.Errors != 0 {
			t.Fatalf("%s: %d request errors", mode.Name, m.Errors)
		}
		return m
	}
	cached := measure(ServeModes[0])
	if cached.PlanHits == 0 || cached.ResultHits == 0 {
		t.Fatalf("cached mode: planHit=%v resultHit=%v, want both > 0", cached.PlanHits, cached.ResultHits)
	}
	noPlan := measure(ServeModes[1])
	if noPlan.PlanHits != 0 {
		t.Fatalf("no-plan-cache mode still reports plan hits: %v", noPlan.PlanHits)
	}
	noResult := measure(ServeModes[2])
	if noResult.ResultHits != 0 {
		t.Fatalf("no-result-cache mode still reports result hits: %v", noResult.ResultHits)
	}
}
