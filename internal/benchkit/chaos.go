package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gradoop/internal/baseline"
	"gradoop/internal/cypher"
	"gradoop/internal/epgm"
	"gradoop/internal/govern"
	"gradoop/internal/obs"
	"gradoop/internal/operators"
	"gradoop/internal/server"
	"gradoop/internal/session"
)

// chaosBlowup is the adversarial query of the overload harness: an
// unconstrained four-way cartesian product over every Person, whose
// materialized embeddings exceed any budget the harness configures by
// orders of magnitude. It is syntactically valid, planner-approved work —
// exactly the traffic an admission gate cannot reject up front and only a
// memory governor can stop.
const chaosBlowup = `MATCH (a:Person),(b:Person),(c:Person),(d:Person) RETURN a, b, c, d`

// ChaosConfig parameterizes one deterministic overload run.
type ChaosConfig struct {
	// Seed drives both the LDBC generator and the request schedule; two
	// runs with the same config issue the same sequence of queries.
	Seed int64
	// SF is the LDBC scale factor of the served graph.
	SF float64
	// Requests is the total number of scheduled queries; roughly
	// BlowupFraction of them are the cartesian blowup, the rest are the
	// parameterized operational query Q1 cycling its selectivity values.
	Requests       int
	BlowupFraction float64
	// Concurrency is the number of client goroutines draining the schedule.
	Concurrency int
	// MemoryBudget is the governed session's process budget in bytes. It
	// must sit well above the well-behaved working set and well below one
	// blowup's output, so largest-first shedding always finds a blowup.
	MemoryBudget int64
	Workers      int
}

// DefaultChaosConfig is the smoke configuration CI runs under -race and a
// tight GOMEMLIMIT: small graph, 2 MiB budget, every fourth request a
// blowup. The budget is sized against measured footprints: one operational
// query peaks at ~125 KiB of charged embeddings, so even with every slot
// held by well-behaved traffic (~500 KiB) a blowup must reserve the
// remaining ~1.5 MiB before the budget overflows — at the overflow the
// largest reservation is always a blowup, and largest-first shedding never
// takes collateral. The four-way cartesian charges tens of megabytes if
// left alone, far past the budget at any seed.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:           2017,
		SF:             0.05,
		Requests:       48,
		BlowupFraction: 0.25,
		Concurrency:    4,
		MemoryBudget:   2 << 20,
		Workers:        2,
	}
}

// ChaosReport aggregates one run's per-request classifications and the
// broker's end state. Check() is the pass/fail gate.
type ChaosReport struct {
	Requests, Blowups, WellBehaved int

	// BlowupsKilled counts blowups that came back 503/memory-budget with a
	// Retry-After header; BlowupEscapes counts blowups that finished (the
	// governor failed) or failed any other way.
	BlowupsKilled int
	BlowupEscapes int

	// WellBehavedOK counts well-behaved requests answered 200 with the
	// oracle-verified row count; WellBehavedKilled counts collateral
	// memory-budget kills (must be zero under largest-first shedding);
	// WrongResults counts 200s whose count disagreed with the oracle.
	WellBehavedOK     int
	WellBehavedKilled int
	WrongResults      int
	OtherFailures     int

	// Broker end state: counters plus the reservation gauge after the run,
	// which must drain to zero.
	Kills, Sheds, Brownouts int64
	ReservedAfter           int64
	LiveAfter               int

	// GoroutineGrowth is the post-run goroutine count minus the pre-run
	// count after the server shut down (leak detector; small scheduler
	// noise is tolerated by Check).
	GoroutineGrowth int

	Wall time.Duration
}

// Check returns the first violated invariant, or nil for a clean run.
func (rep ChaosReport) Check() error {
	switch {
	case rep.Blowups == 0 || rep.WellBehaved == 0:
		return fmt.Errorf("degenerate schedule: %d blowups, %d well-behaved", rep.Blowups, rep.WellBehaved)
	case rep.BlowupsKilled != rep.Blowups:
		return fmt.Errorf("governor missed blowups: %d/%d killed (%d escaped)",
			rep.BlowupsKilled, rep.Blowups, rep.BlowupEscapes)
	case rep.WellBehavedKilled != 0:
		return fmt.Errorf("%d well-behaved queries killed for memory (collateral damage)", rep.WellBehavedKilled)
	case rep.WrongResults != 0:
		return fmt.Errorf("%d well-behaved queries returned non-oracle counts under pressure", rep.WrongResults)
	case rep.OtherFailures != 0:
		return fmt.Errorf("%d requests failed outside the governed taxonomy", rep.OtherFailures)
	case rep.WellBehavedOK != rep.WellBehaved:
		return fmt.Errorf("well-behaved accounting leak: %d ok of %d", rep.WellBehavedOK, rep.WellBehaved)
	case rep.ReservedAfter != 0 || rep.LiveAfter != 0:
		return fmt.Errorf("broker did not drain: %d B across %d live reservations", rep.ReservedAfter, rep.LiveAfter)
	case rep.GoroutineGrowth > 4:
		return fmt.Errorf("goroutine leak: %d more goroutines than before the run", rep.GoroutineGrowth)
	}
	return nil
}

// RunChaos executes one seeded overload schedule against a fully governed
// session served over HTTP and classifies every response: blowups must die
// with 503 + Retry-After and kind "memory-budget", well-behaved queries
// must return their oracle-verified counts, and afterwards every broker
// reservation must be released and every goroutine gone.
func RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	var rep ChaosReport

	// Dataset plus ground truth. The oracle counts are computed against the
	// brute-force reference matcher before any pressure exists, so a wrong
	// count under load is attributable to the governor, not to the oracle.
	r := &Runner{Seed: cfg.Seed, SFSmall: cfg.SF, SFLarge: cfg.SF, cache: map[string]*prepared{}}
	p := r.Prepare(cfg.SF, cfg.Workers)
	ref := baseline.NewReference(p.Graph())
	morph := operators.Morphism{Vertex: operators.Homomorphism, Edge: operators.Isomorphism}
	names := []string{p.FirstName(Low), p.FirstName(Medium), p.FirstName(High)}
	oracle := make(map[string]int64, len(names))
	for _, name := range names {
		ast, err := cypher.Parse(Q1.Text())
		if err != nil {
			return rep, err
		}
		params := map[string]epgm.PropertyValue{"firstName": epgm.PVString(name)}
		qg, err := cypher.BuildQueryGraph(ast, params)
		if err != nil {
			return rep, err
		}
		oracle[name] = int64(ref.Count(qg, morph))
	}

	registry := obs.NewRegistry()
	sess := session.New(p.Graph(), session.Options{
		Workers:       cfg.Workers,
		Vertex:        morph.Vertex,
		Edge:          morph.Edge,
		MaxConcurrent: cfg.Concurrency,
		MaxQueued:     2 * cfg.Requests, // never 429: every scheduled query must run
		MemoryBudget:  cfg.MemoryBudget,
		ShedPolicy:    govern.ShedLargest,
		Metrics:       registry,
	})
	ts := httptest.NewServer(server.New(sess, server.Config{Metrics: registry}))

	// The deterministic schedule: kind and parameter of every request are
	// fixed by the seed before any goroutine starts.
	type chaosReq struct {
		blowup bool
		name   string
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedule := make([]chaosReq, cfg.Requests)
	for i := range schedule {
		if rng.Float64() < cfg.BlowupFraction {
			schedule[i] = chaosReq{blowup: true}
			rep.Blowups++
		} else {
			schedule[i] = chaosReq{name: names[rng.Intn(len(names))]}
			rep.WellBehaved++
		}
	}

	before := runtime.NumGoroutine()
	var next atomic.Int64
	var mu sync.Mutex // guards the classification counters below
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedule) {
					return
				}
				req := schedule[i]
				status, retryAfter, out, err := chaosPost(ts.URL, req.blowup, req.name)
				mu.Lock()
				classifyChaos(&rep, req.blowup, oracle[req.name], status, retryAfter, out, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	rep.Requests = len(schedule)

	m := sess.Metrics()
	rep.Kills, rep.Sheds, rep.Brownouts = m.MemKills, m.MemSheds, m.MemBrownouts

	ts.Close()
	// Settle: the HTTP server's handler goroutines and any kill unwinding
	// finish asynchronously; poll briefly before declaring a leak. The
	// result cache may legitimately hold broker bytes (weak reservations,
	// reclaimable at any time) — the drain assertion is on everything
	// beyond them: leaked per-query reservations.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep.ReservedAfter = sess.Broker().Reserved() - sess.Metrics().ResultBytes
		rep.LiveAfter = sess.Broker().Live()
		rep.GoroutineGrowth = runtime.NumGoroutine() - before
		if (rep.ReservedAfter == 0 && rep.LiveAfter == 0 && rep.GoroutineGrowth <= 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return rep, nil
}

// chaosPost issues one request and returns the status, Retry-After header
// and decoded body.
func chaosPost(url string, blowup bool, name string) (int, string, map[string]any, error) {
	body := map[string]any{"query": chaosBlowup}
	if !blowup {
		body = map[string]any{
			"query":  Q1.Text(),
			"params": map[string]any{"firstName": name},
		}
	}
	b, err := json.Marshal(body)
	if err != nil {
		return 0, "", nil, err
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, resp.Header.Get("Retry-After"), nil, err
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), out, nil
}

// classifyChaos folds one response into the report under the harness's
// contract: a blowup is only "killed" if the full structured surface is
// present (503, Retry-After, kind memory-budget); a well-behaved query only
// "ok" if its count matches the oracle.
func classifyChaos(rep *ChaosReport, blowup bool, want int64, status int, retryAfter string, out map[string]any, err error) {
	if err != nil {
		rep.OtherFailures++
		return
	}
	kind, _ := out["kind"].(string)
	if blowup {
		if status == http.StatusServiceUnavailable && kind == "memory-budget" && retryAfter != "" {
			rep.BlowupsKilled++
		} else {
			rep.BlowupEscapes++
		}
		return
	}
	switch {
	case status == http.StatusOK:
		if count, ok := out["count"].(float64); ok && int64(count) == want {
			rep.WellBehavedOK++
		} else {
			rep.WrongResults++
		}
	case kind == "memory-budget":
		rep.WellBehavedKilled++
	default:
		rep.OtherFailures++
	}
}

// Chaos is the CLI entry point: one default-config run, its report, and a
// hard error when any invariant is violated.
func Chaos(r *Runner, w io.Writer) error {
	cfg := DefaultChaosConfig()
	cfg.Seed = r.Seed
	fmt.Fprintf(w, "== Overload chaos (SF%g, budget %d KiB, %d requests, %d clients) ==\n",
		cfg.SF, cfg.MemoryBudget>>10, cfg.Requests, cfg.Concurrency)
	rep, err := RunChaos(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "blowups: %d scheduled, %d killed (503+Retry-After), %d escaped\n",
		rep.Blowups, rep.BlowupsKilled, rep.BlowupEscapes)
	fmt.Fprintf(w, "well-behaved: %d scheduled, %d oracle-correct, %d killed, %d wrong\n",
		rep.WellBehaved, rep.WellBehavedOK, rep.WellBehavedKilled, rep.WrongResults)
	fmt.Fprintf(w, "broker: kills=%d sheds=%d brownouts=%d reservedAfter=%d live=%d\n",
		rep.Kills, rep.Sheds, rep.Brownouts, rep.ReservedAfter, rep.LiveAfter)
	fmt.Fprintf(w, "wall: %s, goroutine growth: %d\n", fmtDur(rep.Wall), rep.GoroutineGrowth)
	return rep.Check()
}
