package benchkit

import "testing"

// TestChaosSmoke is the CI overload gate: one seeded schedule of cartesian
// blowups interleaved with oracle-checked operational queries against a
// governed, HTTP-served session. Every invariant lives in
// ChaosReport.Check: all blowups die with the full structured surface
// (503, Retry-After, kind memory-budget), zero well-behaved queries are
// killed or corrupted, the broker drains, no goroutines leak. Run under
// -race and a tight GOMEMLIMIT by the chaos-smoke make target.
func TestChaosSmoke(t *testing.T) {
	cfg := DefaultChaosConfig()
	if testing.Short() {
		cfg.Requests = 16
	}
	rep, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("chaos harness: %v", err)
	}
	t.Logf("chaos: %d requests in %s — blowups %d/%d killed, well-behaved %d/%d ok, kills=%d sheds=%d brownouts=%d",
		rep.Requests, rep.Wall, rep.BlowupsKilled, rep.Blowups,
		rep.WellBehavedOK, rep.WellBehaved, rep.Kills, rep.Sheds, rep.Brownouts)
	if err := rep.Check(); err != nil {
		t.Fatalf("chaos invariant violated: %v\nreport: %+v", err, rep)
	}
}

// TestChaosDeterministicSchedule: the same seed must produce the same
// blowup/well-behaved split (the schedule is fixed before any goroutine
// starts), and a different seed a different one — the knob the harness
// turns to explore interleavings reproducibly.
func TestChaosDeterministicSchedule(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Requests = 12
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Check(); err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Blowups != b.Blowups || a.WellBehaved != b.WellBehaved {
		t.Fatalf("schedule not deterministic: %d/%d vs %d/%d",
			a.Blowups, a.WellBehaved, b.Blowups, b.WellBehaved)
	}
}
