package benchkit

import (
	"strings"
	"testing"
)

// TestClusterExperiment runs the distributed-execution experiment at a
// tiny scale: the multi-process cells must reproduce the in-process
// baseline counts, and the shuffle-byte columns must be populated for
// topologies whose exchanges cross sockets.
func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	origCounts, origReqs := ClusterWorkerCounts, ClusterRequests
	ClusterWorkerCounts = []int{2}
	ClusterRequests = 3
	defer func() { ClusterWorkerCounts, ClusterRequests = origCounts, origReqs }()

	r := NewRunner()
	r.SFSmall = 0.02
	var sb strings.Builder
	if err := Cluster(r, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("distributed counts diverge from the in-process engine:\n%s", out)
	}
	if !strings.Contains(out, "in-proc") {
		t.Fatalf("missing baseline row:\n%s", out)
	}
}

// TestRunClusterShuffleBytes checks the per-cell measurement surface: a
// two-process topology running an analytical query must record both the
// model's predicted shuffle volume and nonzero bytes on the wire.
func TestRunClusterShuffleBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	r := NewRunner()
	m, err := r.RunCluster(Q4, 0.02, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.ModelBytes <= 0 {
		t.Error("cost model charged no shuffle bytes")
	}
	if m.WireBytes <= 0 {
		t.Error("two-process shuffles put no bytes on the wire")
	}
}
