package benchkit

import (
	"fmt"
	"io"
	"time"
)

// Workers is the worker sweep of the paper's scalability experiment.
var Workers = []int{1, 2, 4, 8, 16}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// Figure3 reproduces the speedup-over-workers experiment: operational
// queries Q1–Q3 on the large scale factor with low-selectivity predicates,
// analytical queries Q4–Q6 on the small one. It prints one row per query
// with simulated runtimes and speedups for 1–16 workers.
func Figure3(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Figure 3: speedup over workers (Q1-3 on SF%g low sel., Q4-6 on SF%g) ==\n", r.SFLarge, r.SFSmall)
	fmt.Fprintf(w, "%-6s %-8s", "query", "sf")
	for _, n := range Workers {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("w=%d", n))
	}
	fmt.Fprintln(w)
	for _, q := range AllQueries {
		sf := r.SFSmall
		if q.Operational() {
			sf = r.SFLarge
		}
		fmt.Fprintf(w, "%-6s %-8g", q, sf)
		var base time.Duration
		for _, n := range Workers {
			m, err := r.Run(q, sf, n, Low)
			if err != nil {
				return err
			}
			if n == 1 {
				base = m.SimTime
				fmt.Fprintf(w, " %14s", fmtDur(m.SimTime))
				continue
			}
			speedup := float64(base) / float64(m.SimTime)
			fmt.Fprintf(w, " %8s (%.1f)", fmtDur(m.SimTime), speedup)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure4 reproduces the data-volume experiment: all six queries at 16
// workers on the small and large scale factors (10x apart); runtime should
// grow roughly linearly with the volume.
func Figure4(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Figure 4: data size increase (16 workers, SF%g vs SF%g) ==\n", r.SFSmall, r.SFLarge)
	fmt.Fprintf(w, "%-6s %14s %14s %8s\n", "query", "small", "large", "ratio")
	for _, q := range AllQueries {
		small, err := r.Run(q, r.SFSmall, 16, Low)
		if err != nil {
			return err
		}
		large, err := r.Run(q, r.SFLarge, 16, Low)
		if err != nil {
			return err
		}
		ratio := float64(large.SimTime) / float64(small.SimTime)
		fmt.Fprintf(w, "%-6s %14s %14s %7.1fx\n", q, fmtDur(small.SimTime), fmtDur(large.SimTime), ratio)
	}
	return nil
}

// Figure5 reproduces the selectivity experiment: queries 1–3 at 4 workers
// with high/medium/low-selectivity firstName parameters.
func Figure5(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Figure 5: query selectivity (4 workers, SF%g) ==\n", r.SFLarge)
	fmt.Fprintf(w, "%-6s %14s %14s %14s\n", "query", "high", "medium", "low")
	for _, q := range []QueryID{Q1, Q2, Q3} {
		fmt.Fprintf(w, "%-6s", q)
		for _, sel := range Selectivities {
			m, err := r.Run(q, r.SFLarge, 4, sel)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14s", fmtDur(m.SimTime))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table3 reproduces the intermediate-result-size table: the four
// sub-patterns evaluated at the three selectivity classes.
func Table3(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Table 3: intermediate result sizes (SF%g) ==\n", r.SFSmall)
	fmt.Fprintf(w, "%-58s %10s %10s %10s\n", "pattern", "high", "medium", "low")
	for _, pat := range Table3Patterns {
		fmt.Fprintf(w, "%-58s", pat.Name)
		for _, sel := range Selectivities {
			n, err := r.RunPattern(pat.Query, r.SFSmall, 4, sel)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10d", n)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table4 reproduces the full runtime/speedup matrix: queries 1–3 for every
// selectivity and both scale factors over the worker sweep, queries 4–6 on
// the small factor over the sweep plus the large factor at 16 workers.
func Table4(r *Runner, w io.Writer) error {
	fmt.Fprintln(w, "== Table 4: query runtimes (simulated seconds, speedup vs 1 worker) ==")
	fmt.Fprintf(w, "%-6s %-8s %-8s", "query", "sel", "sf")
	for _, n := range Workers {
		fmt.Fprintf(w, " %16s", fmt.Sprintf("w=%d", n))
	}
	fmt.Fprintln(w)
	row := func(q QueryID, sel Selectivity, sf float64, workers []int) error {
		fmt.Fprintf(w, "%-6s %-8s %-8g", q, sel, sf)
		var base time.Duration
		for _, n := range Workers {
			use := false
			for _, m := range workers {
				if m == n {
					use = true
					break
				}
			}
			if !use {
				fmt.Fprintf(w, " %16s", "-")
				continue
			}
			m, err := r.Run(q, sf, n, sel)
			if err != nil {
				return err
			}
			if base == 0 {
				base = m.SimTime
				fmt.Fprintf(w, " %16s", fmtDur(m.SimTime))
				continue
			}
			fmt.Fprintf(w, " %10s (%.1f)", fmtDur(m.SimTime), float64(base)/float64(m.SimTime))
		}
		fmt.Fprintln(w)
		return nil
	}
	for _, q := range []QueryID{Q1, Q2, Q3} {
		for _, sel := range Selectivities {
			for _, sf := range []float64{r.SFSmall, r.SFLarge} {
				if err := row(q, sel, sf, Workers); err != nil {
					return err
				}
			}
		}
	}
	for _, q := range []QueryID{Q4, Q5, Q6} {
		if err := row(q, "-", r.SFSmall, Workers); err != nil {
			return err
		}
		if err := row(q, "-", r.SFLarge, []int{16}); err != nil {
			return err
		}
	}
	return nil
}

// Extended runs the extended workload (OPTIONAL MATCH, aggregation,
// ordering, string predicates) — features beyond the paper's tables.
func Extended(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Extended workload (8 workers, SF%g) ==\n", r.SFLarge)
	fmt.Fprintf(w, "%-22s %8s %14s\n", "query", "rows", "simTime")
	for _, xq := range ExtendedQueries {
		p := r.Prepare(r.SFLarge, 8)
		p.env.ResetMetrics()
		rows, err := runExtended(p, xq.Query)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %8d %14s\n", xq.Name, len(rows), fmtDur(p.env.Metrics().SimTime))
	}
	return nil
}

// Cardinalities reproduces the appendix result-cardinality tables: Q1–Q3
// per selectivity and Q4–Q6 totals, on both scale factors.
func Cardinalities(r *Runner, w io.Writer) error {
	fmt.Fprintln(w, "== Appendix: result cardinalities ==")
	fmt.Fprintf(w, "%-6s %-8s %12s %12s\n", "query", "sel", fmt.Sprintf("SF%g", r.SFSmall), fmt.Sprintf("SF%g", r.SFLarge))
	for _, q := range []QueryID{Q1, Q2, Q3} {
		for _, sel := range Selectivities {
			small, err := r.Run(q, r.SFSmall, 4, sel)
			if err != nil {
				return err
			}
			large, err := r.Run(q, r.SFLarge, 4, sel)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6s %-8s %12d %12d\n", q, sel, small.Count, large.Count)
		}
	}
	for _, q := range []QueryID{Q4, Q5, Q6} {
		small, err := r.Run(q, r.SFSmall, 4, Low)
		if err != nil {
			return err
		}
		large, err := r.Run(q, r.SFLarge, 4, Low)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %-8s %12d %12d\n", q, "-", small.Count, large.Count)
	}
	return nil
}
