package benchkit

import (
	"fmt"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/ldbc"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
	"gradoop/internal/trace"
)

// Runner prepares datasets and executes measured queries. Prepared graphs
// are cached per (scale factor, worker count).
type Runner struct {
	// Seed feeds the deterministic LDBC generator.
	Seed int64
	// SFSmall and SFLarge are the two data sizes, 10x apart, standing in
	// for the paper's SF10 and SF100.
	SFSmall, SFLarge float64

	cache map[string]*prepared
}

// NewRunner returns a runner with the default experiment scale: SFSmall
// yields ~1k vertices and SFLarge ~10k, preserving the paper's 10x ratio at
// laptop scale.
func NewRunner() *Runner {
	return &Runner{Seed: 2017, SFSmall: 0.1, SFLarge: 1.0, cache: map[string]*prepared{}}
}

type prepared struct {
	env   *dataflow.Env
	data  *ldbc.Dataset
	stats *stats.GraphStatistics
	names [3]string // common, medium, rare first names
}

// Prepare generates (or returns the cached) dataset for a scale factor and
// worker count, along with its statistics.
func (r *Runner) Prepare(sf float64, workers int) *prepared {
	if r.cache == nil {
		r.cache = map[string]*prepared{}
	}
	key := fmt.Sprintf("%g/%d", sf, workers)
	if p, ok := r.cache[key]; ok {
		return p
	}
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	data := ldbc.Generate(env, ldbc.Config{ScaleFactor: sf, Seed: r.Seed})
	st := stats.Collect(data.Graph)
	common, medium, rare := data.FirstNamesBySelectivity()
	p := &prepared{env: env, data: data, stats: st, names: [3]string{common, medium, rare}}
	r.cache[key] = p
	return p
}

// FirstName maps a selectivity class to the dataset's parameter value.
func (p *prepared) FirstName(sel Selectivity) string {
	switch sel {
	case Low: // common name, low selectivity, large result
		return p.names[0]
	case Medium:
		return p.names[1]
	default: // High: rare name, small result
		return p.names[2]
	}
}

// Graph returns the prepared logical graph.
func (p *prepared) Graph() *epgm.LogicalGraph { return p.data.Graph }

// Measurement is one measured query execution.
type Measurement struct {
	Query       QueryID
	ScaleFactor float64
	Workers     int
	Selectivity Selectivity
	Count       int64
	// SimTime is the deterministic simulated cluster runtime (the number
	// the figures are built from).
	SimTime time.Duration
	// RealTime is the local wall-clock time, reported for reference.
	RealTime time.Duration
	// Skew is the busiest worker's load relative to the mean.
	Skew float64
	// ShuffledBytes is the total network volume of the job.
	ShuffledBytes int64
}

// paperMorphism is the semantics used throughout the evaluation: Neo4j-like
// vertex homomorphism with edge isomorphism, matching the paper's example
// call g.cypher(q, HOMO, ISO).
var paperMorphism = core.Config{
	Vertex: operators.Homomorphism,
	Edge:   operators.Isomorphism,
}

// Run executes one query at one configuration and returns the measurement.
// The execution includes plan construction and counting, as in the paper
// ("query execution time includes loading the graph, finding all matches
// and counting them"); generation cost stands in for HDFS loading and is
// excluded, which is noted in EXPERIMENTS.md.
func (r *Runner) Run(q QueryID, sf float64, workers int, sel Selectivity) (Measurement, error) {
	m, _, err := r.run(q, sf, workers, sel, nil)
	return m, err
}

// RunAnalyzed executes one query with execution tracing enabled and returns
// the measurement together with the full result; res.AnalyzedPlan() renders
// the EXPLAIN ANALYZE view and res.Trace exports the Chrome timeline.
func (r *Runner) RunAnalyzed(q QueryID, sf float64, workers int, sel Selectivity) (Measurement, *core.Result, error) {
	return r.run(q, sf, workers, sel, trace.NewCollector())
}

// run is the shared measured-execution path; col is nil for untraced runs.
func (r *Runner) run(q QueryID, sf float64, workers int, sel Selectivity, col *trace.Collector) (Measurement, *core.Result, error) {
	p := r.Prepare(sf, workers)
	cfg := paperMorphism
	cfg.Stats = p.stats
	cfg.Trace = col
	if q.Operational() {
		cfg.Params = map[string]epgm.PropertyValue{
			"firstName": epgm.PVString(p.FirstName(sel)),
		}
	}
	p.env.ResetMetrics()
	start := time.Now()
	res, err := core.Execute(p.Graph(), q.Text(), cfg)
	if err != nil {
		return Measurement{}, nil, fmt.Errorf("benchkit: %s: %w", q, err)
	}
	count := res.Count()
	real := time.Since(start)
	m := p.env.Metrics()
	return Measurement{
		Query:         q,
		ScaleFactor:   sf,
		Workers:       workers,
		Selectivity:   sel,
		Count:         count,
		SimTime:       m.SimTime,
		RealTime:      real,
		Skew:          m.Skew(),
		ShuffledBytes: m.TotalNet,
	}, res, nil
}

// runExtended executes an extended-workload query and returns its rows.
func runExtended(p *prepared, query string) ([]core.Row, error) {
	cfg := paperMorphism
	cfg.Stats = p.stats
	res, err := core.Execute(p.Graph(), query, cfg)
	if err != nil {
		return nil, err
	}
	return res.Rows(), nil
}

// RunExtended executes one extended-workload query at the given scale and
// worker count, returning the row count and refreshing the env metrics.
func (r *Runner) RunExtended(query string, sf float64, workers int) (int, error) {
	p := r.Prepare(sf, workers)
	p.env.ResetMetrics()
	rows, err := runExtended(p, query)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// RunPattern executes an arbitrary parameterized pattern (used by the
// Table 3 experiment) and returns its result cardinality.
func (r *Runner) RunPattern(query string, sf float64, workers int, sel Selectivity) (int64, error) {
	p := r.Prepare(sf, workers)
	cfg := paperMorphism
	cfg.Stats = p.stats
	cfg.Params = map[string]epgm.PropertyValue{
		"firstName": epgm.PVString(p.FirstName(sel)),
	}
	res, err := core.Execute(p.Graph(), query, cfg)
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}
