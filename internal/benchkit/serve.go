package benchkit

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/qstore"
	"gradoop/internal/session"
)

// ServeConcurrencies is the client-concurrency sweep of the serving
// experiment. Tests shrink it for speed.
var ServeConcurrencies = []int{1, 4, 16}

// ServeRequests is the request count per (mode, concurrency) cell. Tests
// shrink it for speed.
var ServeRequests = 90

// ServeMode configures one cache configuration of the serving experiment.
type ServeMode struct {
	Name string
	Opts func(o *session.Options)
}

// ServeModes are the cache configurations compared by the experiment: both
// caches on, plan cache disabled (recompile every request) and result
// cache disabled (re-execute every request).
var ServeModes = []ServeMode{
	{Name: "cached", Opts: func(o *session.Options) {}},
	{Name: "no-plan-cache", Opts: func(o *session.Options) { o.NoPlanCache = true }},
	{Name: "no-result-cache", Opts: func(o *session.Options) { o.NoResultCache = true }},
}

// ServeMeasurement is one cell of the serving-throughput matrix.
type ServeMeasurement struct {
	Mode        string
	Concurrency int
	Requests    int
	Wall        time.Duration
	QPS         float64
	P50, P99    time.Duration
	PlanHits    float64 // hit ratio
	ResultHits  float64 // hit ratio
	Errors      int64
}

// serveWorkload returns the request stream of the throughput measurement:
// the parameterized operational query Q1 cycling through the three
// selectivity parameter values, so the plan cache sees one template and
// the result cache three distinct keys.
func serveWorkload(p *prepared, n int) []session.Request {
	names := []string{p.FirstName(Low), p.FirstName(Medium), p.FirstName(High)}
	reqs := make([]session.Request, n)
	for i := range reqs {
		reqs[i] = session.Request{
			Query:  Q1.Text(),
			Params: map[string]epgm.PropertyValue{"firstName": epgm.PVString(names[i%len(names)])},
		}
	}
	return reqs
}

// RunServe measures one cell: a fresh session in the given cache mode,
// `concurrency` client goroutines draining `requests` workload requests.
func (r *Runner) RunServe(sf float64, mode ServeMode, concurrency, requests int) (ServeMeasurement, error) {
	p := r.Prepare(sf, 2)
	opts := session.Options{Workers: 2, MaxConcurrent: concurrency, MaxQueued: 2 * requests}
	mode.Opts(&opts)
	s := session.New(p.Graph(), opts)

	work := serveWorkload(p, requests)
	latencies := make([]time.Duration, requests)
	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				if _, err := s.Execute(work[i]); err != nil {
					errs.Add(1)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	m := s.Metrics()
	return ServeMeasurement{
		Mode:        mode.Name,
		Concurrency: concurrency,
		Requests:    requests,
		Wall:        wall,
		QPS:         float64(requests) / wall.Seconds(),
		P50:         latencies[requests/2],
		P99:         latencies[(requests*99)/100],
		PlanHits:    m.PlanHitRatio(),
		ResultHits:  m.ResultHitRatio(),
		Errors:      errs.Load(),
	}, nil
}

// ServeOverhead compares the serving experiment's no-result-cache cell
// with the metrics registry enabled vs disabled: every request executes a
// real dataflow job, so the enabled run records per-stage histograms,
// cache counters and admission waits on the hot path. The deltas quantify
// what continuous telemetry costs.
type ServeOverhead struct {
	Disabled, Enabled ServeMeasurement
}

// QPSDelta is the relative throughput change when the registry is on
// (negative = slower).
func (o ServeOverhead) QPSDelta() float64 {
	if o.Disabled.QPS == 0 {
		return 0
	}
	return (o.Enabled.QPS - o.Disabled.QPS) / o.Disabled.QPS
}

// RunServeOverhead measures the registry-overhead pair at one concurrency.
// Each enabled run gets a fresh registry (a registry serves one session;
// duplicate instrument names panic by design).
func (r *Runner) RunServeOverhead(sf float64, concurrency, requests int) (ServeOverhead, error) {
	disabled := ServeMode{Name: "telemetry-off", Opts: func(o *session.Options) {
		o.NoResultCache = true
	}}
	enabled := ServeMode{Name: "telemetry-on", Opts: func(o *session.Options) {
		o.NoResultCache = true
		o.Metrics = obs.NewRegistry()
	}}
	var out ServeOverhead
	var err error
	if out.Disabled, err = r.RunServe(sf, disabled, concurrency, requests); err != nil {
		return out, err
	}
	if out.Enabled, err = r.RunServe(sf, enabled, concurrency, requests); err != nil {
		return out, err
	}
	return out, nil
}

// QStoreOverhead compares the no-result-cache serving cell with the query
// store enabled vs disabled: every request executes a real job and, when
// the store is on, appends one JSONL record and folds it into the
// per-fingerprint aggregates on the exit path. The deltas quantify what
// persistent execution history costs.
type QStoreOverhead struct {
	Disabled, Enabled ServeMeasurement
}

// QPSDelta is the relative throughput change with the store on
// (negative = slower).
func (o QStoreOverhead) QPSDelta() float64 {
	if o.Disabled.QPS == 0 {
		return 0
	}
	return (o.Enabled.QPS - o.Disabled.QPS) / o.Disabled.QPS
}

// RunQStoreOverhead measures the query-store overhead pair at one
// concurrency. The enabled leg writes into a temporary directory that is
// removed (store closed first) before returning.
func (r *Runner) RunQStoreOverhead(sf float64, concurrency, requests int) (QStoreOverhead, error) {
	dir, err := os.MkdirTemp("", "benchkit-qstore-*")
	if err != nil {
		return QStoreOverhead{}, fmt.Errorf("benchkit: qstore overhead dir: %w", err)
	}
	defer os.RemoveAll(dir)
	store, err := qstore.Open(qstore.Options{Dir: dir})
	if err != nil {
		return QStoreOverhead{}, fmt.Errorf("benchkit: qstore overhead store: %w", err)
	}
	defer store.Close()

	disabled := ServeMode{Name: "qstore-off", Opts: func(o *session.Options) {
		o.NoResultCache = true
	}}
	enabled := ServeMode{Name: "qstore-on", Opts: func(o *session.Options) {
		o.NoResultCache = true
		o.QueryStore = store
	}}
	var out QStoreOverhead
	if out.Disabled, err = r.RunServe(sf, disabled, concurrency, requests); err != nil {
		return out, err
	}
	if out.Enabled, err = r.RunServe(sf, enabled, concurrency, requests); err != nil {
		return out, err
	}
	if got := store.Records(); got != int64(requests) {
		return out, fmt.Errorf("benchkit: qstore overhead run recorded %d of %d requests", got, requests)
	}
	return out, nil
}

// VerifyPlanCacheViaTrace proves, via trace spans, that a plan-cache hit
// skips the parse+plan phase: the first (cold) traced execution carries a
// "Prepare" operator span, the second (hit) does not. Returns the two span
// presences.
func (r *Runner) VerifyPlanCacheViaTrace(sf float64) (coldPrepared, warmPrepared bool, err error) {
	p := r.Prepare(sf, 2)
	s := session.New(p.Graph(), session.Options{Workers: 2})
	req := session.Request{
		Query:  Q1.Text(),
		Params: map[string]epgm.PropertyValue{"firstName": epgm.PVString(p.FirstName(High))},
		Trace:  true,
	}
	hasPrepare := func() (bool, error) {
		res, err := s.Execute(req)
		if err != nil {
			return false, err
		}
		for _, op := range res.Trace.Ops() {
			if op.Label == "Prepare" {
				return true, nil
			}
		}
		return false, nil
	}
	if coldPrepared, err = hasPrepare(); err != nil {
		return false, false, fmt.Errorf("benchkit: serve trace verification (cold): %w", err)
	}
	if warmPrepared, err = hasPrepare(); err != nil {
		return false, false, fmt.Errorf("benchkit: serve trace verification (warm): %w", err)
	}
	return coldPrepared, warmPrepared, nil
}

// AdmissionBurst is the admission-control demonstration: a session with one
// job slot and a one-deep queue takes a burst of concurrent requests; every
// request must terminate with either a result, a structured rejection or a
// deadline — never a hang.
type AdmissionBurst struct {
	Burst    int
	OK       int64
	Rejected int64
	Timeout  int64
	Other    int64
}

// RunAdmissionBurst fires `burst` concurrent analytical queries at a
// deliberately undersized session.
func (r *Runner) RunAdmissionBurst(sf float64, burst int) (AdmissionBurst, error) {
	p := r.Prepare(sf, 2)
	s := session.New(p.Graph(), session.Options{
		Workers:       2,
		MaxConcurrent: 1,
		MaxQueued:     1,
		NoResultCache: true, // force every request onto the job slots
	})
	out := AdmissionBurst{Burst: burst}
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Execute(session.Request{Query: Q5.Text()})
			switch {
			case err == nil:
				atomic.AddInt64(&out.OK, 1)
			case session.KindOf(err) == session.KindRejected:
				atomic.AddInt64(&out.Rejected, 1)
			case session.KindOf(err) == session.KindTimeout:
				atomic.AddInt64(&out.Timeout, 1)
			default:
				atomic.AddInt64(&out.Other, 1)
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// Serve runs the query-service throughput experiment: QPS and latency
// percentiles for the parameterized workload across client-concurrency
// levels and cache modes, the trace-span proof that plan-cache hits skip
// parse+plan, and the admission-control burst demonstration.
func Serve(r *Runner, w io.Writer) error {
	fmt.Fprintf(w, "== Query service: throughput vs concurrency and cache mode (SF%g-sim, Q1 workload) ==\n", r.SFSmall)
	fmt.Fprintf(w, "%-16s %-7s %-9s %10s %12s %12s %9s %9s %s\n",
		"mode", "clients", "requests", "QPS", "p50", "p99", "planHit", "resHit", "errors")
	for _, mode := range ServeModes {
		for _, c := range ServeConcurrencies {
			m, err := r.RunServe(r.SFSmall, mode, c, ServeRequests)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-16s %-7d %-9d %10.1f %12s %12s %8.0f%% %8.0f%% %d\n",
				m.Mode, m.Concurrency, m.Requests, m.QPS,
				fmtDur(m.P50), fmtDur(m.P99), 100*m.PlanHits, 100*m.ResultHits, m.Errors)
		}
	}

	cold, warm, err := r.VerifyPlanCacheViaTrace(r.SFSmall)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nplan-cache trace check: cold run Prepare span=%v, warm run Prepare span=%v", cold, warm)
	if cold && !warm {
		fmt.Fprintf(w, "  (hit skips parse+plan: verified)\n")
	} else {
		fmt.Fprintf(w, "  (UNEXPECTED)\n")
	}

	burst, err := r.RunAdmissionBurst(r.SFSmall, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "admission burst (1 slot, queue 1, %d clients): ok=%d rejected=%d timeout=%d other=%d\n",
		burst.Burst, burst.OK, burst.Rejected, burst.Timeout, burst.Other)
	if burst.OK+burst.Rejected+burst.Timeout+burst.Other != int64(burst.Burst) {
		return fmt.Errorf("benchkit: admission burst lost requests")
	}

	fmt.Fprintf(w, "\n== Registry overhead: telemetry on vs off (no-result-cache: every request is a real job) ==\n")
	fmt.Fprintf(w, "%-16s %-7s %10s %12s %12s\n", "telemetry", "clients", "QPS", "p50", "p99")
	maxC := ServeConcurrencies[len(ServeConcurrencies)-1]
	oh, err := r.RunServeOverhead(r.SFSmall, maxC, ServeRequests)
	if err != nil {
		return err
	}
	for _, m := range []ServeMeasurement{oh.Disabled, oh.Enabled} {
		fmt.Fprintf(w, "%-16s %-7d %10.1f %12s %12s\n",
			m.Mode, m.Concurrency, m.QPS, fmtDur(m.P50), fmtDur(m.P99))
	}
	fmt.Fprintf(w, "registry overhead: QPS %+.1f%%, p99 %s -> %s\n",
		100*oh.QPSDelta(), fmtDur(oh.Disabled.P99), fmtDur(oh.Enabled.P99))

	fmt.Fprintf(w, "\n== Query-store overhead: persistent history on vs off (no-result-cache: every request is a real job) ==\n")
	fmt.Fprintf(w, "%-16s %-7s %10s %12s %12s\n", "query store", "clients", "QPS", "p50", "p99")
	qoh, err := r.RunQStoreOverhead(r.SFSmall, maxC, ServeRequests)
	if err != nil {
		return err
	}
	for _, m := range []ServeMeasurement{qoh.Disabled, qoh.Enabled} {
		fmt.Fprintf(w, "%-16s %-7d %10.1f %12s %12s\n",
			m.Mode, m.Concurrency, m.QPS, fmtDur(m.P50), fmtDur(m.P99))
	}
	fmt.Fprintf(w, "query-store overhead: QPS %+.1f%%, p99 %s -> %s\n",
		100*qoh.QPSDelta(), fmtDur(qoh.Disabled.P99), fmtDur(qoh.Enabled.P99))
	return nil
}
