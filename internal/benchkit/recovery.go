package benchkit

import (
	"fmt"
	"io"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/ldbc"
	"gradoop/internal/stats"
)

// RecoveryFailureCounts is the injected-failure sweep of the
// recovery-overhead experiment. Tests shrink it for speed.
var RecoveryFailureCounts = []int{0, 1, 2, 4, 8}

// RecoveryMeasurement is one run of a query under injected worker
// failures.
type RecoveryMeasurement struct {
	Query    QueryID
	Failures int // planned kills
	Count    int64
	SimTime  time.Duration
	// Retries/RetriedStages/RecoveryTime mirror MetricsSnapshot: observed
	// partition re-executions (a kill planned at a stage with no
	// partitioned execution, e.g. a broadcast collect, never fires).
	Retries       int64
	RetriedStages int64
	RecoveryTime  time.Duration
}

// RunRecovery executes one query on a dedicated environment with n
// deterministic worker kills injected. The dataset and statistics are
// prepared fault-free; faults are armed (and metrics reset, aligning kill
// stage numbers with query stages) just before the measured execution.
// Kills are spread over the stage count observed in a fault-free dry run
// of the same query.
func (r *Runner) RunRecovery(q QueryID, sf float64, workers int, sel Selectivity, n int) (RecoveryMeasurement, error) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	data := ldbc.Generate(env, ldbc.Config{ScaleFactor: sf, Seed: r.Seed})
	st := stats.Collect(data.Graph)

	cfg := paperMorphism
	cfg.Stats = st
	if q.Operational() {
		common, medium, rare := data.FirstNamesBySelectivity()
		name := common
		switch sel {
		case Medium:
			name = medium
		case High:
			name = rare
		}
		cfg.Params = map[string]epgm.PropertyValue{"firstName": epgm.PVString(name)}
	}

	// Fault-free dry run: learn the job's stage count for kill placement.
	env.ResetMetrics()
	if _, err := core.Execute(data.Graph, q.Text(), cfg); err != nil {
		return RecoveryMeasurement{}, fmt.Errorf("benchkit: recovery dry run %s: %w", q, err)
	}
	stages := env.Metrics().Stages

	if n > 0 {
		env.InjectFaults(&dataflow.FaultPlan{Kills: dataflow.RandomKills(r.Seed, n, stages, workers)})
	}
	env.ResetMetrics()
	res, err := core.Execute(data.Graph, q.Text(), cfg)
	if err != nil {
		return RecoveryMeasurement{}, fmt.Errorf("benchkit: recovery %s (%d failures): %w", q, n, err)
	}
	count := res.Count()
	m := env.Metrics()
	return RecoveryMeasurement{
		Query:         q,
		Failures:      n,
		Count:         count,
		SimTime:       m.SimTime,
		Retries:       m.Retries,
		RetriedStages: m.RetriedStages,
		RecoveryTime:  m.RecoveryTime,
	}, nil
}

// Recovery runs the recovery-overhead experiment: simulated runtime as a
// function of the injected worker-failure count for Q1 (operational, low
// selectivity) and Q4 (analytical) on the small scale factor at 4 workers.
// Every faulty run must produce the same match count as the failure-free
// baseline — recovery is required to be transparent — and the overhead
// column shows the runtime inflation caused by backoff plus recomputation.
func Recovery(r *Runner, w io.Writer) error {
	const workers = 4
	fmt.Fprintf(w, "== Recovery overhead: runtime vs injected failures (SF%g-sim, %d workers) ==\n", r.SFSmall, workers)
	fmt.Fprintf(w, "%-6s %-9s %-8s %-8s %14s %14s %9s %s\n",
		"query", "failures", "retries", "rStages", "recovery", "simTime", "overhead", "result")
	for _, q := range []QueryID{Q1, Q4} {
		base := RecoveryMeasurement{}
		for i, n := range RecoveryFailureCounts {
			m, err := r.RunRecovery(q, r.SFSmall, workers, Low, n)
			if err != nil {
				return err
			}
			if i == 0 {
				base = m
			}
			result := "ok"
			if m.Count != base.Count {
				result = fmt.Sprintf("MISMATCH (%d != %d)", m.Count, base.Count)
			}
			overhead := "-"
			if base.SimTime > 0 {
				overhead = fmt.Sprintf("%.2fx", float64(m.SimTime)/float64(base.SimTime))
			}
			fmt.Fprintf(w, "%-6s %-9d %-8d %-8d %14s %14s %9s %s\n",
				q, m.Failures, m.Retries, m.RetriedStages, fmtDur(m.RecoveryTime), fmtDur(m.SimTime), overhead, result)
		}
	}
	return nil
}
