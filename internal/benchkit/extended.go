package benchkit

// ExtendedQueries exercise the openCypher extensions beyond the paper's six
// benchmark queries on the same LDBC-like data: OPTIONAL MATCH, aggregation
// with grouping, ordering/limits and null handling. They are benchmarked as
// an extended workload (not part of the paper's tables).
var ExtendedQueries = []struct {
	Name  string
	Query string
}{
	{
		// Profile with optional affiliations: every person appears once per
		// (university, city) combination, or with nulls where absent.
		Name: "X1-optional-profile",
		Query: `
			MATCH (p:Person)
			OPTIONAL MATCH (p)-[:studyAt]->(u:University)
			OPTIONAL MATCH (p)-[:isLocatedIn]->(c:City)
			RETURN p.firstName, p.lastName, u.name, c.name`,
	},
	{
		// Top interests: aggregation with implicit grouping plus ordering
		// and a limit.
		Name: "X2-top-interests",
		Query: `
			MATCH (p:Person)-[:hasInterest]->(t:Tag)
			RETURN t.name AS tag, count(*) AS fans
			ORDER BY fans DESC, tag LIMIT 10`,
	},
	{
		// Authorship volume: per-author message statistics with arithmetic
		// and multiple aggregates.
		Name: "X3-author-stats",
		Query: `
			MATCH (p:Person)<-[:hasCreator]-(m:Comment|Post)
			WHERE m.length IS NOT NULL
			RETURN p.firstName AS author, count(*) AS messages,
			       avg(m.length) AS avgLen, max(m.length) AS maxLen
			ORDER BY messages DESC LIMIT 20`,
	},
	{
		// Friendship reach with string predicates and DISTINCT.
		Name: "X4-distinct-reach",
		Query: `
			MATCH (p:Person)-[:knows]->(q:Person)
			WHERE p.firstName STARTS WITH 'J' AND q.firstName <> p.firstName
			RETURN DISTINCT q.firstName ORDER BY q.firstName`,
	},
}
