package dataflow

import (
	"sync"
	"time"

	"gradoop/internal/obs"
)

// Observer publishes the engine's continuous telemetry into an obs.Registry:
// per-stage wall-time histograms keyed by transformation kind, shuffle and
// spill byte counters, and retry counts. One Observer is shared by every Env
// a service creates (the instruments are registered once, at constructor
// scope — the obsregister analyzer enforces this), unlike the per-job
// trace.Collector.
//
// A nil *Observer disables engine telemetry entirely; every hook the engine
// calls is guarded by a nil check, mirroring the nil-tracer zero-cost
// guarantee (see TestObserverParity and TestDisabledObserverHotPathNoAlloc).
type Observer struct {
	stageTime    *obs.HistogramVec
	stages       *obs.Counter
	shuffleBytes *obs.Counter
	spillBytes   *obs.Counter
	retries      *obs.Counter

	// kindPtrs interns the stage-kind strings so the live-kind pointer an
	// Env publishes for CurrentStage can be swapped atomically without
	// allocating at stage boundaries (kinds are a small static set).
	mu       sync.RWMutex
	kindPtrs map[string]*string
}

// NewObserver registers the engine's instruments into r. Returns nil — the
// disabled, zero-cost observer — when r is nil.
func NewObserver(r *obs.Registry) *Observer {
	if r == nil {
		return nil
	}
	return &Observer{
		stageTime: r.NewHistogramVec("gradoop_stage_duration_seconds",
			"Wall time per dataflow stage, by transformation kind", "kind", obs.ScaleNanos),
		stages: r.NewCounter("gradoop_stages_total",
			"Dataflow stages executed"),
		shuffleBytes: r.NewCounter("gradoop_shuffle_bytes_total",
			"Bytes exchanged between workers in shuffles and broadcasts"),
		spillBytes: r.NewCounter("gradoop_spill_bytes_total",
			"Bytes written and re-read to simulated disk under memory pressure"),
		retries: r.NewCounter("gradoop_stage_retries_total",
			"Partition re-executions after worker failures"),
		kindPtrs: map[string]*string{},
	}
}

// kindPtr returns the interned pointer for a stage kind, creating it on
// first use; the warm path is an RLock map hit with no allocation.
func (o *Observer) kindPtr(kind string) *string {
	o.mu.RLock()
	p := o.kindPtrs[kind]
	o.mu.RUnlock()
	if p != nil {
		return p
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if p := o.kindPtrs[kind]; p != nil {
		return p
	}
	k := kind
	o.kindPtrs[kind] = &k
	return &k
}

// SetObserver installs (or, with nil, removes) the continuous-telemetry
// observer. Must only be called between jobs, like SetTracer. With no
// observer every telemetry hook reduces to a nil check, so disabled
// telemetry is free.
func (e *Env) SetObserver(o *Observer) { e.observer = o }

// obsStageBoundary closes the timing of the previous stage and opens the
// next one. Stage boundaries happen serially on the job's driving goroutine
// (beginStage documents this), so the kind/start fields need no lock.
func (e *Env) obsStageBoundary(kind string) {
	if e.observer == nil {
		return
	}
	now := time.Now()
	if e.obsKind != "" {
		e.observer.stageTime.With(e.obsKind).Observe(int64(now.Sub(e.obsStart)))
	}
	e.obsKind, e.obsStart = kind, now
	e.curKind.Store(e.observer.kindPtr(kind))
	e.observer.stages.Inc()
}

// CurrentStage reports the 1-based number of the stage currently executing
// and its transformation kind, for live job introspection (/jobs). The kind
// is "" unless an observer is installed — the engine only publishes the
// live kind when continuous telemetry is on. Safe to call from any
// goroutine while a job runs.
func (e *Env) CurrentStage() (stage int64, kind string) {
	if p := e.curKind.Load(); p != nil {
		kind = *p
	}
	return e.metrics.stageCount(), kind
}

// obsFinish closes the last open stage timing at job end.
func (e *Env) obsFinish() {
	if e.observer != nil && e.obsKind != "" {
		e.observer.stageTime.With(e.obsKind).Observe(int64(time.Since(e.obsStart)))
		e.obsKind = ""
		e.curKind.Store(nil)
	}
}
