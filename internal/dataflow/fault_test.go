package dataflow

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestPanicContainment: a panic in a UDF must not crash the process; it is
// recovered into a JobError carrying the stage, the partition and a stack,
// and the environment reports the failure.
func TestPanicContainment(t *testing.T) {
	env := NewEnv(DefaultConfig(4))
	d := FromSlice(env, []int{1, 2, 3, 4, 5, 6, 7, 8})
	out := Map(d, func(v int) int {
		if v == 6 {
			panic("bad predicate")
		}
		return v * 2
	})
	if !env.Failed() {
		t.Fatal("env should be failed after a UDF panic")
	}
	var je *JobError
	if err := env.Err(); !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Stage != 1 {
		t.Errorf("panic in the first transformation should report stage 1, got %d", je.Stage)
	}
	if len(je.Stack) == 0 {
		t.Error("JobError should capture the goroutine stack")
	}
	if je.Error() == "" || len(je.Error()) > 200 {
		t.Errorf("Error() should be a short single line, got %q", je.Error())
	}
	// The failed stage's output must not leak partial results downstream.
	if n := out.Count(); n >= 8 {
		t.Errorf("failed stage should not deliver all outputs, got %d", n)
	}
}

// TestShortCircuitAfterFailure: once an env failed, subsequent
// transformations are skipped entirely (no stages charged, empty outputs).
func TestShortCircuitAfterFailure(t *testing.T) {
	env := NewEnv(DefaultConfig(2))
	d := FromSlice(env, []int{1, 2, 3})
	Map(d, func(int) int { panic("boom") })
	stages := env.Metrics().Stages
	calls := 0
	//lint:ignore partitioncapture the UDF must never run on a failed env; the test asserts calls stays 0
	out := Map(d, func(v int) int { calls++; return v })
	out = Filter(out, func(int) bool { return true })
	out = PartitionByKey(out, func(v int) uint64 { return uint64(v) })
	if calls != 0 {
		t.Errorf("UDF ran %d times on a failed env", calls)
	}
	if !out.IsEmpty() {
		t.Error("transformations on a failed env must return empty datasets")
	}
	if got := env.Metrics().Stages; got != stages {
		t.Errorf("failed env charged %d extra stages", got-stages)
	}
}

// TestBeginClearsFailure: a new job on the same env starts clean.
func TestBeginClearsFailure(t *testing.T) {
	env := NewEnv(DefaultConfig(2))
	Map(FromSlice(env, []int{1}), func(int) int { panic("boom") })
	if env.Err() == nil {
		t.Fatal("expected failure")
	}
	env.Begin(nil)
	if env.Failed() || env.Err() != nil {
		t.Fatal("Begin must clear the previous job's failure")
	}
	got := Map(FromSlice(env, []int{1, 2}), func(v int) int { return v + 1 }).Collect()
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("post-Begin job broken: %v", got)
	}
}

// TestEnvMismatch: binary transformations refuse operands from different
// environments with a typed error instead of silently corrupting state.
func TestEnvMismatch(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(a *Dataset[int], b *Dataset[int]) *Env
	}{
		{"Union", func(a, b *Dataset[int]) *Env { return Union(a, b).Env() }},
		{"Join", func(a, b *Dataset[int]) *Env {
			return Join(a, b,
				func(v int) uint64 { return uint64(v) },
				func(v int) uint64 { return uint64(v) },
				func(l, r int, emit func(int)) { emit(l + r) },
				RepartitionHash).Env()
		}},
		{"CoGroup", func(a, b *Dataset[int]) *Env {
			return CoGroup(a, b,
				func(v int) uint64 { return uint64(v) },
				func(v int) uint64 { return uint64(v) },
				func(k uint64, ls, rs []int, emit func(int)) { emit(len(ls) + len(rs)) }).Env()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			envA := NewEnv(DefaultConfig(2))
			envB := NewEnv(DefaultConfig(2))
			a := FromSlice(envA, []int{1, 2, 3})
			b := FromSlice(envB, []int{4, 5, 6})
			out := tc.run(a, b)
			if err := out.Err(); !errors.Is(err, ErrEnvMismatch) {
				t.Fatalf("want ErrEnvMismatch, got %v", err)
			}
			if !errors.Is(envB.Err(), ErrEnvMismatch) {
				t.Error("the other operand's env should be failed too")
			}
		})
	}
}

// TestCancellationPrompt: cancelling the job context aborts a long-running
// transformation within the per-element polling latency, not at the end.
func TestCancellationPrompt(t *testing.T) {
	env := NewEnv(DefaultConfig(4))
	data := make([]int, 1<<16)
	d := FromSlice(env, data)

	ctx, cancel := context.WithCancel(context.Background())
	env.Begin(ctx)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// ~65k elements × 50µs ≈ 0.8s per worker without cancellation.
	Map(d, func(v int) int {
		time.Sleep(50 * time.Microsecond)
		return v
	})
	elapsed := time.Since(start)
	if err := env.Finish(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %s, want prompt abort", elapsed)
	}
}

// TestDeadlineViaNewEnvContext: a deadline on the env context fails the job
// with context.DeadlineExceeded while keeping partial metrics readable.
func TestDeadlineViaNewEnvContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	env := NewEnvContext(ctx, DefaultConfig(2))
	d := FromSlice(env, make([]int, 1<<16))
	Map(d, func(v int) int { time.Sleep(50 * time.Microsecond); return v })
	if err := env.Finish(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if env.Metrics().Stages == 0 {
		t.Error("partial metrics should remain readable after a timeout")
	}
}

// faultyPipeline is a small multi-stage job (map, shuffle-join, reduce)
// whose result is deterministic, used to compare faulty vs fault-free runs.
func faultyPipeline(env *Env) []KV[int, int] {
	n := 4096
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	d := FromSlice(env, data)
	doubled := Map(d, func(v int) int { return v * 2 })
	joined := Join(doubled, d,
		func(v int) uint64 { return uint64(v % 64) },
		func(v int) uint64 { return uint64(v % 64) },
		func(l, r int, emit func(int)) {
			if l%64 == r%64 {
				emit(l + r)
			}
		}, RepartitionHash)
	reduced := ReduceByKey(joined,
		func(v int) int { return v % 16 },
		func(a, b int) int { return a + b })
	out := reduced.Collect()
	return out
}

// TestFaultInjectionRecovery: injected worker kills are recovered by
// re-executing the lost partitions; the result is bit-identical to a
// fault-free run and the metrics expose the retries and their cost.
func TestFaultInjectionRecovery(t *testing.T) {
	clean := NewEnv(DefaultConfig(4))
	want := faultyPipeline(clean)
	cleanTime := clean.Metrics().SimTime

	env := NewEnv(DefaultConfig(4))
	env.InjectFaults(&FaultPlan{Kills: []Kill{
		{Stage: 1, Partition: 0},
		{Stage: 2, Partition: 3},
		{Stage: 3, Partition: 1, Times: 2},
		{Stage: 4, Partition: 2},
	}})
	got := faultyPipeline(env)
	if err := env.Err(); err != nil {
		t.Fatalf("recovery should be transparent, got %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("faulty run differs from fault-free run")
	}
	m := env.Metrics()
	if m.Retries != 5 {
		t.Errorf("want 5 retries (4 kill points, one double), got %d", m.Retries)
	}
	if m.RetriedStages != 4 {
		t.Errorf("want 4 retried stages, got %d", m.RetriedStages)
	}
	if m.RecoveryTime == 0 {
		t.Error("recovery time should be charged")
	}
	if m.SimTime <= cleanTime {
		t.Errorf("recovery must cost simulated time: faulty %s <= clean %s", m.SimTime, cleanTime)
	}
}

// TestRetriesExhausted: a worker that keeps dying past the retry budget
// fails the job with a JobError naming the stage and partition.
func TestRetriesExhausted(t *testing.T) {
	env := NewEnv(DefaultConfig(2))
	env.InjectFaults(&FaultPlan{
		MaxRetries: 2,
		Kills:      []Kill{{Stage: 1, Partition: 1, Times: 100}},
	})
	Map(FromSlice(env, []int{1, 2, 3, 4}), func(v int) int { return v })
	var je *JobError
	if err := env.Err(); !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %v", err)
	}
	if je.Stage != 1 || je.Partition != 1 {
		t.Errorf("JobError should name stage 1 / partition 1, got stage %d / partition %d", je.Stage, je.Partition)
	}
	if env.Metrics().Retries != 2 {
		t.Errorf("want exactly MaxRetries=2 retries before giving up, got %d", env.Metrics().Retries)
	}
}

// TestRandomKillsDeterministic: the seeded kill generator is reproducible
// and respects its bounds.
func TestRandomKillsDeterministic(t *testing.T) {
	a := RandomKills(7, 16, 12, 4)
	b := RandomKills(7, 16, 12, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield the same kill schedule")
	}
	for _, k := range a {
		if k.Stage < 1 || k.Stage > 12 || k.Partition < 0 || k.Partition >= 4 {
			t.Fatalf("kill out of bounds: %+v", k)
		}
	}
	if reflect.DeepEqual(a, RandomKills(8, 16, 12, 4)) {
		t.Fatal("different seeds should differ")
	}
}

// TestFromSliceAliasingHazard documents the hazard FromSlice's contract
// warns about — a caller mutating the input slice corrupts the dataset —
// and shows that DebugDefensiveCopy prevents it.
func TestFromSliceAliasingHazard(t *testing.T) {
	// Without the defensive copy the mutation is visible (the hazard).
	env := NewEnv(DefaultConfig(2))
	data := []int{1, 2, 3, 4}
	d := FromSlice(env, data)
	data[0] = 99
	if got := d.Collect()[0]; got != 99 {
		t.Fatalf("expected the aliasing hazard to be observable without the copy, got %d", got)
	}

	// With DebugDefensiveCopy the dataset is isolated from the caller.
	cfg := DefaultConfig(2)
	cfg.DebugDefensiveCopy = true
	env2 := NewEnv(cfg)
	data2 := []int{1, 2, 3, 4}
	d2 := FromSlice(env2, data2)
	data2[0] = 99
	if got := d2.Collect()[0]; got != 1 {
		t.Fatalf("DebugDefensiveCopy should isolate the dataset, got %d", got)
	}
}

// TestRecoveryPreservesShuffleDeterminism: kills during a shuffle stage must
// not perturb the deterministic destination-partition concatenation order.
func TestRecoveryPreservesShuffleDeterminism(t *testing.T) {
	run := func(plan *FaultPlan) []int {
		env := NewEnv(DefaultConfig(8))
		env.InjectFaults(plan)
		data := make([]int, 10000)
		for i := range data {
			data[i] = i * 31
		}
		s := PartitionByKey(FromSlice(env, data), func(v int) uint64 { return uint64(v) })
		if err := env.Err(); err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
		return s.Collect()
	}
	want := run(nil)
	got := run(&FaultPlan{Kills: []Kill{{Stage: 1, Partition: 2}, {Stage: 1, Partition: 5, Times: 3}}})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shuffle output order changed under injected failures")
	}
}
