package dataflow

import (
	"errors"
	"reflect"
	"testing"

	"gradoop/internal/govern"
)

// governedEnv returns an env whose job charges real memory against a fresh
// broker with the given budget, plus the reservation for cleanup assertions.
func governedEnv(t *testing.T, workers int, budget int64) (*Env, *govern.Broker, *govern.Reservation) {
	t.Helper()
	env := NewEnv(DefaultConfig(workers))
	b := govern.NewBroker(budget, govern.ShedSelf)
	r := b.Begin("test-job")
	env.SetGovernor(r)
	return env, b, r
}

// TestBudgetKillUnwindsLikeJobError: a blowup under a small budget must fail
// the job with a JobError wrapping the structured budget error, deliver no
// partial results downstream, and release every reserved byte.
func TestBudgetKillUnwindsLikeJobError(t *testing.T) {
	env, b, r := governedEnv(t, 4, 32<<10)
	in := make([]int, 1024)
	d := FromSlice(env, in)
	// Each input element fans out 1024 outputs: ~16 MiB of default-sized
	// elements against a 32 KiB budget.
	out := FlatMap(d, func(v int, emit func(int)) {
		for i := 0; i < 1024; i++ {
			emit(i)
		}
	})
	if !env.Failed() {
		t.Fatal("env should be failed after a budget kill")
	}
	err := env.Err()
	if !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("job error should match ErrMemoryBudget, got %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("budget kill should unwind as *JobError, got %T: %v", err, err)
	}
	var be *govern.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("JobError should wrap *govern.BudgetError, got %v", err)
	}
	if be.Shed {
		t.Error("single-job ShedSelf kill must have Shed=false")
	}
	// Downstream short-circuits to empty.
	if n := Filter(out, func(int) bool { return true }).Count(); n != 0 {
		t.Errorf("downstream of a killed stage should be empty, got %d rows", n)
	}
	if m := env.Metrics(); m.MemKills != 1 {
		t.Errorf("MemKills = %d, want 1", m.MemKills)
	}
	// Release drains the broker: no leaked reservations.
	r.Release()
	if got := b.Reserved(); got != 0 {
		t.Errorf("broker holds %d B after release, want 0", got)
	}
}

// TestBudgetKillMidJoin: the cartesian blowup the ISSUE motivates — a join
// whose probe phase explodes — must die mid-probe, not after materializing
// the full cross product.
func TestBudgetKillMidJoin(t *testing.T) {
	env, b, r := governedEnv(t, 2, 64<<10)
	n := 2000
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	l := FromSlice(env, vals)
	rr := FromSlice(env, vals)
	// All keys equal: a 2000×2000 cross product, ~64 MB of default-sized
	// pairs against a 64 KiB budget.
	out := Join(l, rr, func(int) uint64 { return 1 }, func(int) uint64 { return 1 },
		func(a, b int, emit func([2]int)) { emit([2]int{a, b}) }, RepartitionHash)
	if !env.Failed() {
		t.Fatal("cartesian blowup should be killed")
	}
	if err := env.Err(); !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	if got := out.Count(); got >= int64(n)*int64(n) {
		t.Errorf("blowup materialized all %d rows before dying", got)
	}
	r.Release()
	if b.Reserved() != 0 {
		t.Errorf("leaked %d B", b.Reserved())
	}
}

// TestGovernedParity: with an ample budget, governance must not change
// results or the simulated cost metrics — only add the memory accounting.
func TestGovernedParity(t *testing.T) {
	run := func(env *Env) ([]int, MetricsSnapshot) {
		vals := make([]int, 500)
		for i := range vals {
			vals[i] = i
		}
		d := FromSlice(env, vals)
		d = Filter(d, func(v int) bool { return v%3 != 0 })
		d = PartitionByKey(d, func(v int) uint64 { return uint64(v % 7) })
		out := Join(d, d, func(v int) uint64 { return uint64(v % 7) }, func(v int) uint64 { return uint64(v % 7) },
			func(a, b int, emit func(int)) {
				if a < b {
					emit(a + b)
				}
			}, RepartitionHash)
		if env.Err() != nil {
			t.Fatalf("governed parity run failed: %v", env.Err())
		}
		return out.Collect(), env.Metrics()
	}

	plain := NewEnv(DefaultConfig(4))
	wantRows, wantM := run(plain)

	env, b, r := governedEnv(t, 4, 1<<30)
	gotRows, gotM := run(env)

	if !reflect.DeepEqual(gotRows, wantRows) {
		t.Errorf("governed run produced different results: %d vs %d rows", len(gotRows), len(wantRows))
	}
	if gotM.TotalCPU != wantM.TotalCPU || gotM.TotalNet != wantM.TotalNet ||
		gotM.TotalSpill != wantM.TotalSpill || gotM.Stages != wantM.Stages ||
		gotM.SimTime != wantM.SimTime {
		t.Errorf("governance changed the cost model:\n got %s\nwant %s", gotM, wantM)
	}
	if gotM.TotalMem == 0 {
		t.Error("governed run should account materialized bytes")
	}
	if gotM.MemKills != 0 {
		t.Errorf("MemKills = %d under an ample budget, want 0", gotM.MemKills)
	}
	// The reservation's balance equals the metered bytes.
	if r.Used() != gotM.TotalMem {
		t.Errorf("reservation holds %d B, metrics say %d B", r.Used(), gotM.TotalMem)
	}
	r.Release()
	if b.Reserved() != 0 {
		t.Errorf("leaked %d B", b.Reserved())
	}
}

// TestShedVictimDiesAtNextCharge: a reservation killed externally (as a
// shedding victim) fails the job at its very next materialization point.
func TestShedVictimDiesAtNextCharge(t *testing.T) {
	b := govern.NewBroker(1<<20, govern.ShedLargest)
	victim := b.Begin("victim")
	env := NewEnv(DefaultConfig(2))
	env.SetGovernor(victim)

	// First job half: normal work succeeds, and the victim holds the
	// lion's share of the budget.
	d := FromSlice(env, []int{1, 2, 3, 4})
	d = Map(d, func(v int) int { return v + 1 })
	if env.Failed() {
		t.Fatalf("setup failed: %v", env.Err())
	}
	if err := victim.Reserve(800 << 10); err != nil {
		t.Fatalf("victim reserve: %v", err)
	}

	// A smaller query's overflow sheds the victim — largest-query-first.
	other := b.Begin("small")
	if err := other.Reserve(400 << 10); err != nil {
		t.Fatalf("small reserve should shed the victim and proceed, got %v", err)
	}

	// The victim's next transformation dies with the shed error.
	Map(d, func(v int) int { return v })
	if !env.Failed() {
		t.Fatal("shed victim should fail at its next charge")
	}
	var be *govern.BudgetError
	if err := env.Err(); !errors.As(err, &be) || !be.Shed {
		t.Fatalf("want shed *BudgetError, got %v", env.Err())
	}
	victim.Release()
	other.Release()
	if b.Reserved() != 0 {
		t.Errorf("leaked %d B", b.Reserved())
	}
}

// TestMemMetricsMergeClone: the new memory fields ride MetricsSnapshot's
// Merge/Clone like every other per-worker counter.
func TestMemMetricsMergeClone(t *testing.T) {
	a := MetricsSnapshot{Workers: 2, MemBytes: []int64{10, 20}, TotalMem: 30, MemKills: 1}
	b := MetricsSnapshot{Workers: 4, MemBytes: []int64{1, 2, 3, 4}, TotalMem: 10, MemKills: 2}
	var sum MetricsSnapshot
	sum.Merge(a)
	sum.Merge(b)
	if want := []int64{11, 22, 3, 4}; !reflect.DeepEqual(sum.MemBytes, want) {
		t.Errorf("MemBytes = %v, want %v", sum.MemBytes, want)
	}
	if sum.TotalMem != 40 || sum.MemKills != 3 {
		t.Errorf("TotalMem=%d MemKills=%d, want 40/3", sum.TotalMem, sum.MemKills)
	}
	c := sum.Clone()
	c.MemBytes[0] = 99
	if sum.MemBytes[0] == 99 {
		t.Error("Clone aliases MemBytes")
	}
}
