package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics accumulates the cost drivers of a dataflow job per worker. The
// per-worker counters are plain atomics — every partition goroutine hits
// them on its hot path, and a shared mutex there serializes exactly the
// workers the engine tries to run in parallel. Only the retried-stage set,
// touched on the rare recovery path, keeps a lock. User code never touches
// Metrics directly.
type Metrics struct {
	cpuElements   []atomic.Int64     // elements processed, per worker
	netBytes      []atomic.Int64     // bytes received over the simulated network, per worker
	spillBytes    []atomic.Int64     // bytes written+read to simulated disk, per worker
	memBytes      []atomic.Int64     // real materialized bytes reserved with the governor, per worker
	recoveryNs    []atomic.Int64     // simulated redeployment/backoff nanoseconds, per worker
	stages        atomic.Int64       // transformations executed
	shuffles      atomic.Int64       // transformations that required a network exchange
	retries       atomic.Int64       // partition re-executions after injected failures
	memKills      atomic.Int64       // jobs killed by the memory budget (latched once per job)
	mu            sync.Mutex         // guards retriedStages
	retriedStages map[int64]struct{} // distinct stages that needed ≥1 retry
}

// init (re)allocates the counters. It must only run between jobs: the
// slices are swapped wholesale and concurrent writers would update the old
// ones.
func (m *Metrics) init(workers int) {
	m.cpuElements = make([]atomic.Int64, workers)
	m.netBytes = make([]atomic.Int64, workers)
	m.spillBytes = make([]atomic.Int64, workers)
	m.memBytes = make([]atomic.Int64, workers)
	m.recoveryNs = make([]atomic.Int64, workers)
	m.stages.Store(0)
	m.shuffles.Store(0)
	m.retries.Store(0)
	m.memKills.Store(0)
	m.mu.Lock()
	m.retriedStages = nil
	m.mu.Unlock()
}

// addStage counts one transformation and returns its 1-based stage number.
func (m *Metrics) addStage(shuffle bool) int64 {
	n := m.stages.Add(1)
	if shuffle {
		m.shuffles.Add(1)
	}
	return n
}

// stageCount returns the number of the stage currently executing (stages
// are counted by addStage immediately before their partitioned run).
func (m *Metrics) stageCount() int64 { return m.stages.Load() }

func (m *Metrics) addCPU(worker int, elements int64) {
	m.cpuElements[worker].Add(elements)
}

func (m *Metrics) addNet(worker int, bytes int64) {
	m.netBytes[worker].Add(bytes)
}

func (m *Metrics) addSpill(worker int, bytes int64) {
	m.spillBytes[worker].Add(bytes)
}

func (m *Metrics) addMem(worker int, bytes int64) {
	m.memBytes[worker].Add(bytes)
}

// addRecovery charges one worker-failure recovery: the simulated
// redeployment delay d on the failed worker, one retry, and the stage's
// membership in the retried-stage set. The re-executed work itself
// re-charges CPU/spill through the normal counters.
func (m *Metrics) addRecovery(worker int, stage int64, d time.Duration) {
	m.recoveryNs[worker].Add(int64(d))
	m.retries.Add(1)
	m.mu.Lock()
	if m.retriedStages == nil {
		m.retriedStages = map[int64]struct{}{}
	}
	m.retriedStages[stage] = struct{}{}
	m.mu.Unlock()
}

// MetricsSnapshot is an immutable copy of a job's accumulated metrics
// together with the simulated runtime derived from them.
type MetricsSnapshot struct {
	Workers      int
	CPUElements  []int64 // per worker
	NetBytes     []int64 // per worker
	SpillBytes   []int64 // per worker
	MemBytes     []int64 // per worker, real materialized bytes (governed jobs only)
	Stages       int64
	Shuffles     int64
	TotalCPU     int64 // sum of CPUElements
	TotalNet     int64 // sum of NetBytes
	TotalSpill   int64 // sum of SpillBytes
	TotalMem     int64 // sum of MemBytes — what the job reserved from the memory broker
	SimTime      time.Duration
	MaxWorkerCPU int64 // the busiest worker's element count (skew indicator)

	// MemKills counts jobs killed by the process memory budget (at most 1
	// for a raw single-job snapshot; sums under Merge).
	MemKills int64

	// Retries counts partition re-executions after injected worker
	// failures; RetriedStages counts the distinct stages that needed at
	// least one retry. RecoveryTime is the total simulated redeployment
	// and backoff delay charged for those recoveries (the recomputed work
	// is charged through the ordinary CPU/spill counters and therefore
	// also inflates SimTime).
	Retries       int64
	RetriedStages int64
	RecoveryTime  time.Duration

	// Jobs counts the dataflow jobs aggregated into the snapshot: 0 for a
	// raw single-job snapshot taken from an Env, ≥1 after Merge (which
	// treats a raw snapshot as one job). A query service accumulates its
	// per-query snapshots into one running total through Merge.
	Jobs int64
	// SlotWait is the accumulated time jobs spent queued for an execution
	// slot before starting (admission-control accounting; zero for jobs
	// admitted immediately).
	SlotWait time.Duration
}

// Merge accumulates another snapshot into s: totals, stage and retry
// counters, simulated times and slot waits add up; per-worker breakdowns
// add index-wise (growing to the wider worker count); MaxWorkerCPU takes
// the maximum. Jobs sums, with a raw per-job snapshot (Jobs == 0) counting
// as one job. The receiver owns its slices afterwards — Merge never aliases
// o's.
func (s *MetricsSnapshot) Merge(o MetricsSnapshot) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	grow := func(dst []int64, n int) []int64 {
		for len(dst) < n {
			dst = append(dst, 0)
		}
		return dst
	}
	s.CPUElements = grow(s.CPUElements, len(o.CPUElements))
	s.NetBytes = grow(s.NetBytes, len(o.NetBytes))
	s.SpillBytes = grow(s.SpillBytes, len(o.SpillBytes))
	s.MemBytes = grow(s.MemBytes, len(o.MemBytes))
	for w, v := range o.CPUElements {
		s.CPUElements[w] += v
	}
	for w, v := range o.NetBytes {
		s.NetBytes[w] += v
	}
	for w, v := range o.SpillBytes {
		s.SpillBytes[w] += v
	}
	for w, v := range o.MemBytes {
		s.MemBytes[w] += v
	}
	s.Stages += o.Stages
	s.Shuffles += o.Shuffles
	s.TotalCPU += o.TotalCPU
	s.TotalNet += o.TotalNet
	s.TotalSpill += o.TotalSpill
	s.TotalMem += o.TotalMem
	s.MemKills += o.MemKills
	s.SimTime += o.SimTime
	if o.MaxWorkerCPU > s.MaxWorkerCPU {
		s.MaxWorkerCPU = o.MaxWorkerCPU
	}
	s.Retries += o.Retries
	s.RetriedStages += o.RetriedStages
	s.RecoveryTime += o.RecoveryTime
	jobs := o.Jobs
	if jobs == 0 {
		jobs = 1
	}
	s.Jobs += jobs
	s.SlotWait += o.SlotWait
}

// Clone returns a deep copy of the snapshot: the per-worker slices are
// copied, never aliased, so the clone can be handed to a serializer while
// the original keeps accumulating under its owner's lock. Unlike Merge into
// an empty snapshot, Clone preserves Jobs exactly (Merge counts a raw
// snapshot's Jobs == 0 as one job).
func (s MetricsSnapshot) Clone() MetricsSnapshot {
	s.CPUElements = append([]int64(nil), s.CPUElements...)
	s.NetBytes = append([]int64(nil), s.NetBytes...)
	s.SpillBytes = append([]int64(nil), s.SpillBytes...)
	s.MemBytes = append([]int64(nil), s.MemBytes...)
	return s
}

func (m *Metrics) snapshot(cfg Config) MetricsSnapshot {
	m.mu.Lock()
	retriedStages := int64(len(m.retriedStages))
	m.mu.Unlock()
	s := MetricsSnapshot{
		Workers:       len(m.cpuElements),
		CPUElements:   make([]int64, len(m.cpuElements)),
		NetBytes:      make([]int64, len(m.netBytes)),
		SpillBytes:    make([]int64, len(m.spillBytes)),
		MemBytes:      make([]int64, len(m.memBytes)),
		Stages:        m.stages.Load(),
		Shuffles:      m.shuffles.Load(),
		Retries:       m.retries.Load(),
		RetriedStages: retriedStages,
		MemKills:      m.memKills.Load(),
	}
	var worst time.Duration
	for w := range s.CPUElements {
		s.CPUElements[w] = m.cpuElements[w].Load()
		s.NetBytes[w] = m.netBytes[w].Load()
		s.SpillBytes[w] = m.spillBytes[w].Load()
		s.MemBytes[w] = m.memBytes[w].Load()
		recovery := time.Duration(m.recoveryNs[w].Load())
		s.TotalCPU += s.CPUElements[w]
		s.TotalNet += s.NetBytes[w]
		s.TotalSpill += s.SpillBytes[w]
		s.TotalMem += s.MemBytes[w]
		s.RecoveryTime += recovery
		if s.CPUElements[w] > s.MaxWorkerCPU {
			s.MaxWorkerCPU = s.CPUElements[w]
		}
		t := time.Duration(s.CPUElements[w])*cfg.CPUTimePerElement +
			time.Duration(s.NetBytes[w])*cfg.NetTimePerByte +
			time.Duration(s.SpillBytes[w])*cfg.DiskTimePerByte +
			recovery
		if t > worst {
			worst = t
		}
	}
	s.SimTime = worst + time.Duration(s.Stages)*cfg.StageOverhead
	return s
}

// Skew reports the ratio between the busiest worker's element count and the
// mean element count; 1.0 means a perfectly balanced job.
func (s MetricsSnapshot) Skew() float64 {
	if s.TotalCPU == 0 || s.Workers == 0 {
		return 1
	}
	mean := float64(s.TotalCPU) / float64(s.Workers)
	return float64(s.MaxWorkerCPU) / mean
}

// String renders a single-line human-readable summary.
func (s MetricsSnapshot) String() string {
	line := fmt.Sprintf("workers=%d stages=%d shuffles=%d cpuElems=%d netBytes=%d spillBytes=%d skew=%.2f simTime=%s",
		s.Workers, s.Stages, s.Shuffles, s.TotalCPU, s.TotalNet, s.TotalSpill, s.Skew(), s.SimTime)
	if s.Retries > 0 {
		line += fmt.Sprintf(" retries=%d retriedStages=%d recovery=%s", s.Retries, s.RetriedStages, s.RecoveryTime)
	}
	if s.TotalMem > 0 || s.MemKills > 0 {
		line += fmt.Sprintf(" memBytes=%d memKills=%d", s.TotalMem, s.MemKills)
	}
	return line
}
