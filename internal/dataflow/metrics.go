package dataflow

import (
	"fmt"
	"sync"
	"time"
)

// Metrics accumulates the cost drivers of a dataflow job per worker. All
// counters are written under a mutex by the engine; user code never touches
// Metrics directly.
type Metrics struct {
	mu            sync.Mutex
	cpuElements   []int64 // elements processed, per worker
	netBytes      []int64 // bytes received over the simulated network, per worker
	spillBytes    []int64 // bytes written+read to simulated disk, per worker
	recoveryTime  []time.Duration // simulated redeployment/backoff time, per worker
	stages        int64   // transformations executed
	shuffles      int64   // transformations that required a network exchange
	retries       int64   // partition re-executions after injected failures
	retriedStages map[int64]struct{} // distinct stages that needed ≥1 retry
}

func (m *Metrics) init(workers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cpuElements = make([]int64, workers)
	m.netBytes = make([]int64, workers)
	m.spillBytes = make([]int64, workers)
	m.recoveryTime = make([]time.Duration, workers)
	m.stages = 0
	m.shuffles = 0
	m.retries = 0
	m.retriedStages = nil
}

func (m *Metrics) addStage(shuffle bool) {
	m.mu.Lock()
	m.stages++
	if shuffle {
		m.shuffles++
	}
	m.mu.Unlock()
}

// stageCount returns the number of the stage currently executing (stages
// are counted by addStage immediately before their partitioned run).
func (m *Metrics) stageCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stages
}

func (m *Metrics) addCPU(worker int, elements int64) {
	m.mu.Lock()
	m.cpuElements[worker] += elements
	m.mu.Unlock()
}

func (m *Metrics) addNet(worker int, bytes int64) {
	m.mu.Lock()
	m.netBytes[worker] += bytes
	m.mu.Unlock()
}

func (m *Metrics) addSpill(worker int, bytes int64) {
	m.mu.Lock()
	m.spillBytes[worker] += bytes
	m.mu.Unlock()
}

// addRecovery charges one worker-failure recovery: the simulated
// redeployment delay d on the failed worker, one retry, and the stage's
// membership in the retried-stage set. The re-executed work itself
// re-charges CPU/spill through the normal counters.
func (m *Metrics) addRecovery(worker int, stage int64, d time.Duration) {
	m.mu.Lock()
	m.recoveryTime[worker] += d
	m.retries++
	if m.retriedStages == nil {
		m.retriedStages = map[int64]struct{}{}
	}
	m.retriedStages[stage] = struct{}{}
	m.mu.Unlock()
}

// MetricsSnapshot is an immutable copy of a job's accumulated metrics
// together with the simulated runtime derived from them.
type MetricsSnapshot struct {
	Workers      int
	CPUElements  []int64 // per worker
	NetBytes     []int64 // per worker
	SpillBytes   []int64 // per worker
	Stages       int64
	Shuffles     int64
	TotalCPU     int64 // sum of CPUElements
	TotalNet     int64 // sum of NetBytes
	TotalSpill   int64 // sum of SpillBytes
	SimTime      time.Duration
	MaxWorkerCPU int64 // the busiest worker's element count (skew indicator)

	// Retries counts partition re-executions after injected worker
	// failures; RetriedStages counts the distinct stages that needed at
	// least one retry. RecoveryTime is the total simulated redeployment
	// and backoff delay charged for those recoveries (the recomputed work
	// is charged through the ordinary CPU/spill counters and therefore
	// also inflates SimTime).
	Retries       int64
	RetriedStages int64
	RecoveryTime  time.Duration
}

func (m *Metrics) snapshot(cfg Config) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Workers:       len(m.cpuElements),
		CPUElements:   append([]int64(nil), m.cpuElements...),
		NetBytes:      append([]int64(nil), m.netBytes...),
		SpillBytes:    append([]int64(nil), m.spillBytes...),
		Stages:        m.stages,
		Shuffles:      m.shuffles,
		Retries:       m.retries,
		RetriedStages: int64(len(m.retriedStages)),
	}
	var worst time.Duration
	for w := range s.CPUElements {
		s.TotalCPU += s.CPUElements[w]
		s.TotalNet += s.NetBytes[w]
		s.TotalSpill += s.SpillBytes[w]
		s.RecoveryTime += m.recoveryTime[w]
		if s.CPUElements[w] > s.MaxWorkerCPU {
			s.MaxWorkerCPU = s.CPUElements[w]
		}
		t := time.Duration(s.CPUElements[w])*cfg.CPUTimePerElement +
			time.Duration(s.NetBytes[w])*cfg.NetTimePerByte +
			time.Duration(s.SpillBytes[w])*cfg.DiskTimePerByte +
			m.recoveryTime[w]
		if t > worst {
			worst = t
		}
	}
	s.SimTime = worst + time.Duration(s.Stages)*cfg.StageOverhead
	return s
}

// Skew reports the ratio between the busiest worker's element count and the
// mean element count; 1.0 means a perfectly balanced job.
func (s MetricsSnapshot) Skew() float64 {
	if s.TotalCPU == 0 || s.Workers == 0 {
		return 1
	}
	mean := float64(s.TotalCPU) / float64(s.Workers)
	return float64(s.MaxWorkerCPU) / mean
}

// String renders a single-line human-readable summary.
func (s MetricsSnapshot) String() string {
	line := fmt.Sprintf("workers=%d stages=%d shuffles=%d cpuElems=%d netBytes=%d spillBytes=%d skew=%.2f simTime=%s",
		s.Workers, s.Stages, s.Shuffles, s.TotalCPU, s.TotalNet, s.TotalSpill, s.Skew(), s.SimTime)
	if s.Retries > 0 {
		line += fmt.Sprintf(" retries=%d retriedStages=%d recovery=%s", s.Retries, s.RetriedStages, s.RecoveryTime)
	}
	return line
}
