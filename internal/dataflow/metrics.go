package dataflow

import (
	"fmt"
	"sync"
	"time"
)

// Metrics accumulates the cost drivers of a dataflow job per worker. All
// counters are written under a mutex by the engine; user code never touches
// Metrics directly.
type Metrics struct {
	mu          sync.Mutex
	cpuElements []int64 // elements processed, per worker
	netBytes    []int64 // bytes received over the simulated network, per worker
	spillBytes  []int64 // bytes written+read to simulated disk, per worker
	stages      int64   // transformations executed
	shuffles    int64   // transformations that required a network exchange
}

func (m *Metrics) init(workers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cpuElements = make([]int64, workers)
	m.netBytes = make([]int64, workers)
	m.spillBytes = make([]int64, workers)
	m.stages = 0
	m.shuffles = 0
}

func (m *Metrics) addStage(shuffle bool) {
	m.mu.Lock()
	m.stages++
	if shuffle {
		m.shuffles++
	}
	m.mu.Unlock()
}

func (m *Metrics) addCPU(worker int, elements int64) {
	m.mu.Lock()
	m.cpuElements[worker] += elements
	m.mu.Unlock()
}

func (m *Metrics) addNet(worker int, bytes int64) {
	m.mu.Lock()
	m.netBytes[worker] += bytes
	m.mu.Unlock()
}

func (m *Metrics) addSpill(worker int, bytes int64) {
	m.mu.Lock()
	m.spillBytes[worker] += bytes
	m.mu.Unlock()
}

// MetricsSnapshot is an immutable copy of a job's accumulated metrics
// together with the simulated runtime derived from them.
type MetricsSnapshot struct {
	Workers      int
	CPUElements  []int64 // per worker
	NetBytes     []int64 // per worker
	SpillBytes   []int64 // per worker
	Stages       int64
	Shuffles     int64
	TotalCPU     int64 // sum of CPUElements
	TotalNet     int64 // sum of NetBytes
	TotalSpill   int64 // sum of SpillBytes
	SimTime      time.Duration
	MaxWorkerCPU int64 // the busiest worker's element count (skew indicator)
}

func (m *Metrics) snapshot(cfg Config) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Workers:     len(m.cpuElements),
		CPUElements: append([]int64(nil), m.cpuElements...),
		NetBytes:    append([]int64(nil), m.netBytes...),
		SpillBytes:  append([]int64(nil), m.spillBytes...),
		Stages:      m.stages,
		Shuffles:    m.shuffles,
	}
	var worst time.Duration
	for w := range s.CPUElements {
		s.TotalCPU += s.CPUElements[w]
		s.TotalNet += s.NetBytes[w]
		s.TotalSpill += s.SpillBytes[w]
		if s.CPUElements[w] > s.MaxWorkerCPU {
			s.MaxWorkerCPU = s.CPUElements[w]
		}
		t := time.Duration(s.CPUElements[w])*cfg.CPUTimePerElement +
			time.Duration(s.NetBytes[w])*cfg.NetTimePerByte +
			time.Duration(s.SpillBytes[w])*cfg.DiskTimePerByte
		if t > worst {
			worst = t
		}
	}
	s.SimTime = worst + time.Duration(s.Stages)*cfg.StageOverhead
	return s
}

// Skew reports the ratio between the busiest worker's element count and the
// mean element count; 1.0 means a perfectly balanced job.
func (s MetricsSnapshot) Skew() float64 {
	if s.TotalCPU == 0 || s.Workers == 0 {
		return 1
	}
	mean := float64(s.TotalCPU) / float64(s.Workers)
	return float64(s.MaxWorkerCPU) / mean
}

// String renders a single-line human-readable summary.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("workers=%d stages=%d shuffles=%d cpuElems=%d netBytes=%d spillBytes=%d skew=%.2f simTime=%s",
		s.Workers, s.Stages, s.Shuffles, s.TotalCPU, s.TotalNet, s.TotalSpill, s.Skew(), s.SimTime)
}
