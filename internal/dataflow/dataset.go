package dataflow

// Sized is implemented by element types that can report their serialized
// size. The engine uses it to account network and spill bytes exactly;
// types that do not implement it are charged defaultElementSize bytes.
type Sized interface {
	SizeBytes() int
}

// defaultElementSize is the byte charge for elements that do not implement
// Sized — roughly the wire size of a small fixed-width record.
const defaultElementSize = 16

// sizeOf returns the accounted byte size of an element.
func sizeOf(v any) int64 {
	if s, ok := v.(Sized); ok {
		return int64(s.SizeBytes())
	}
	return defaultElementSize
}

// A Dataset is an immutable, partitioned collection of elements, the
// engine's equivalent of a Flink DataSet. Transformations derive new
// datasets; partitions are processed by independent goroutines with no
// shared state, and elements move between partitions only via shuffles.
type Dataset[T any] struct {
	env   *Env
	parts [][]T
	// partTag identifies the hash partitioning the dataset currently
	// satisfies (0 = unknown). Joins announced with the same tag skip the
	// redundant shuffle — the partition-reuse optimization Flink's
	// optimizer performs and the paper's future work calls out for further
	// runtime reduction. Tags are preserved by order-stable, row-preserving
	// transformations (Filter, Union of equally-tagged inputs) and cleared
	// by everything that rewrites rows.
	partTag uint64
}

// Env returns the execution environment the dataset belongs to.
func (d *Dataset[T]) Env() *Env { return d.env }

// Partitions returns the number of partitions (= workers).
func (d *Dataset[T]) Partitions() int { return len(d.parts) }

// Partition returns partition p's elements, without copying. Callers must
// not mutate the slice. In a distributed job, non-owned partitions are nil
// — a cluster worker ships exactly its owned partitions through this
// accessor.
func (d *Dataset[T]) Partition(p int) []T { return d.parts[p] }

// FromSlice creates a dataset by splitting data into env.Workers()
// contiguous chunks. The input slice is not copied; callers must not
// mutate it afterwards. Config.DebugDefensiveCopy enforces the contract by
// copying the input (at real cost), which turns the silent aliasing hazard
// into a non-issue while debugging.
//
// FromSlice is the leaf of every pipeline, and in a distributed job it is
// where ownership begins: with a transport installed, partitions this
// process does not own stay empty — every process computes the identical
// chunk boundaries over the full slice and keeps only its share, which is
// what lets one deterministic program run unchanged on each worker.
func FromSlice[T any](env *Env, data []T) *Dataset[T] {
	if env.cfg.DebugDefensiveCopy {
		data = append([]T(nil), data...)
	}
	w := env.Workers()
	parts := make([][]T, w)
	n := len(data)
	for p := 0; p < w; p++ {
		if env.transport != nil && !env.transport.Owns(p) {
			continue
		}
		lo, hi := p*n/w, (p+1)*n/w
		parts[p] = data[lo:hi]
	}
	return &Dataset[T]{env: env, parts: parts}
}

// FromPartitions wraps pre-partitioned data. len(parts) must equal
// env.Workers(); shorter inputs are padded with empty partitions and longer
// inputs are folded round-robin so downstream operators always see exactly
// one partition per worker.
func FromPartitions[T any](env *Env, parts [][]T) *Dataset[T] {
	w := env.Workers()
	out := make([][]T, w)
	for i, p := range parts {
		out[i%w] = append(out[i%w], p...)
	}
	return &Dataset[T]{env: env, parts: out}
}

// Empty returns a dataset with no elements.
func Empty[T any](env *Env) *Dataset[T] {
	return &Dataset[T]{env: env, parts: make([][]T, env.Workers())}
}

// Collect gathers all elements into a single slice, partition by partition.
// The result order is deterministic for a deterministic pipeline.
func (d *Dataset[T]) Collect() []T {
	var n int
	for _, p := range d.parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the total number of elements.
func (d *Dataset[T]) Count() int64 {
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// IsEmpty reports whether the dataset has no elements.
func (d *Dataset[T]) IsEmpty() bool { return d.Count() == 0 }

// Map applies f to every element, preserving partitioning.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return FlatMap(d, func(t T, emit func(U)) { emit(f(t)) })
}

// Filter keeps the elements for which pred returns true, preserving
// partitioning (including any partition tag — rows do not move or change).
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	out := FlatMap(d, func(t T, emit func(T)) {
		if pred(t) {
			emit(t)
		}
	})
	out.partTag = d.partTag
	return out
}

// FlatMap applies f to every element; f may emit zero or more outputs. This
// is the transformation the paper's FilterAndProject operators fuse their
// Select→Project→Transform steps into (§3.1).
func FlatMap[T, U any](d *Dataset[T], f func(T, func(U))) *Dataset[U] {
	env := d.env
	if env.Failed() {
		return Empty[U](env)
	}
	env.beginStage("FlatMap", false)
	out := make([][]U, len(d.parts))
	env.runParts(len(d.parts), func(p int) {
		var res []U
		var mem int64
		emit := func(u U) { res = append(res, u) }
		if env.governor != nil {
			emit = func(u U) { res = append(res, u); mem += sizeOf(u) }
		}
		for i, t := range d.parts[p] {
			if i&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return
				}
				// Flush the freshly materialized bytes at the same cadence as
				// the cancellation poll, so a blowup is killed mid-loop, not
				// after its output slice has already been built.
				if !env.chargeMem(p, mem) {
					return
				}
				mem = 0
			}
			f(t, emit)
		}
		if !env.chargeMem(p, mem) {
			return
		}
		env.chargeCPU(p, int64(len(d.parts[p])))
		env.traceRowsIn(p, int64(len(d.parts[p])))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
	return &Dataset[U]{env: env, parts: out}
}

// MapPartition applies f once per partition, giving it the whole partition
// and an emit callback.
func MapPartition[T, U any](d *Dataset[T], f func(part []T, emit func(U))) *Dataset[U] {
	env := d.env
	if env.Failed() {
		return Empty[U](env)
	}
	env.beginStage("MapPartition", false)
	out := make([][]U, len(d.parts))
	env.runParts(len(d.parts), func(p int) {
		var res []U
		var mem int64
		var dead bool
		emit := func(u U) { res = append(res, u) }
		if env.governor != nil {
			// The driver has no per-element loop here — f consumes the whole
			// partition — so metering rides on emit: flush every mask+1
			// outputs and, once killed, drop the buffer and swallow further
			// emits so a runaway f cannot keep growing it.
			emit = func(u U) {
				if dead {
					return
				}
				res = append(res, u)
				mem += sizeOf(u)
				if len(res)&cancelCheckMask == 0 {
					if !env.chargeMem(p, mem) {
						dead, res = true, nil
						return
					}
					mem = 0
				}
			}
		}
		f(d.parts[p], emit)
		if dead || !env.chargeMem(p, mem) {
			return
		}
		env.chargeCPU(p, int64(len(d.parts[p])))
		env.traceRowsIn(p, int64(len(d.parts[p])))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
	return &Dataset[U]{env: env, parts: out}
}

// Union concatenates two datasets partition-wise. Like Flink's union it
// moves no data; a shared partition tag survives.
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	env := a.env
	if mismatch(a.env, b.env, "Union") || env.Failed() {
		return Empty[T](env)
	}
	env.beginStage("Union", false)
	out := make([][]T, len(a.parts))
	for p := range out {
		if len(b.parts[p]) == 0 {
			out[p] = a.parts[p]
			continue
		}
		if len(a.parts[p]) == 0 {
			// Datasets are immutable, so an empty left partition can alias
			// the right one instead of copying it (the mirror of the fast
			// path above); per-label unions over a session's pinned slices
			// stay zero-copy this way.
			out[p] = b.parts[p]
			continue
		}
		merged := make([]T, 0, len(a.parts[p])+len(b.parts[p]))
		merged = append(merged, a.parts[p]...)
		merged = append(merged, b.parts[p]...)
		if env.governor != nil {
			// Only the copying path materializes new memory; the aliasing
			// fast paths above reuse the input partitions byte for byte.
			var mem int64
			for _, t := range merged {
				mem += sizeOf(t)
			}
			if !env.chargeMem(p, mem) {
				return Empty[T](env)
			}
		}
		out[p] = merged
	}
	if env.tracer != nil {
		for p := range out {
			n := int64(len(out[p]))
			env.traceRowsIn(p, n)
			env.traceRowsOut(p, n)
		}
	}
	tag := uint64(0)
	if a.partTag == b.partTag {
		tag = a.partTag
	}
	if env.transport == nil {
		// An empty operand cannot perturb the other's partitioning, so its
		// tag survives — but only in-process: emptiness here is local, and a
		// partition empty on this worker may be populated on another, so a
		// distributed job must not let data-dependent tags diverge across
		// processes (the cost is a redundant, content-preserving shuffle).
		if b.IsEmpty() {
			tag = a.partTag
		} else if a.IsEmpty() {
			tag = b.partTag
		}
	}
	return &Dataset[T]{env: env, parts: out, partTag: tag}
}
