package dataflow

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gradoop/internal/obs"
)

// observedPipeline runs a fixed pipeline — map, filter, hash join (with a
// shuffle and a spilling build side), distinct — against a fresh Env and
// returns the collected output plus the env's metrics snapshot.
func observedPipeline(o *Observer) ([]int, MetricsSnapshot) {
	cfg := DefaultConfig(4)
	cfg.MemoryPerWorker = 2 << 20
	e := NewEnv(cfg)
	e.SetObserver(o)
	d := FromSlice(e, ints(2000))
	mapped := Map(d, func(x int) int { return x + 1 })
	filtered := Filter(mapped, func(x int) bool { return x%3 != 0 })
	build := make([]fatElem, 12)
	joined := Join(FromSlice(e, build), filtered,
		func(fatElem) uint64 { return 1 },
		func(x int) uint64 { return uint64(x % 5) },
		func(_ fatElem, x int, emit func(int)) { emit(x) }, RepartitionHash)
	out := Distinct(joined).Collect()
	sort.Ints(out)
	return out, e.Metrics()
}

// TestObserverParity: the identical pipeline with and without an installed
// observer produces identical results and an identical metrics snapshot —
// telemetry observes execution, it never alters it.
func TestObserverParity(t *testing.T) {
	r := obs.NewRegistry()
	withObs, mWith := observedPipeline(NewObserver(r))
	without, mWithout := observedPipeline(nil)

	if !reflect.DeepEqual(withObs, without) {
		t.Fatalf("observer changed query results:\nwith:    %v\nwithout: %v", withObs, without)
	}
	if !reflect.DeepEqual(mWith, mWithout) {
		t.Fatalf("observer changed engine metrics:\nwith:    %+v\nwithout: %+v", mWith, mWithout)
	}

	exp := r.Exposition()
	for _, want := range []string{
		"# TYPE gradoop_stage_duration_seconds summary",
		`gradoop_stage_duration_seconds{kind="Join",quantile="0.99"}`,
		`gradoop_stage_duration_seconds{kind="Shuffle",quantile="0.5"}`,
		"gradoop_stage_duration_seconds_count",
		"# TYPE gradoop_shuffle_bytes_total counter",
		"# TYPE gradoop_spill_bytes_total counter",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
	// The counters agree exactly with the engine's own accounting.
	obsShuffle := extractSample(t, exp, "gradoop_shuffle_bytes_total ")
	if obsShuffle != float64(mWith.TotalNet) {
		t.Errorf("shuffle bytes: registry=%v engine=%d", obsShuffle, mWith.TotalNet)
	}
	obsSpill := extractSample(t, exp, "gradoop_spill_bytes_total ")
	if obsSpill != float64(mWith.TotalSpill) {
		t.Errorf("spill bytes: registry=%v engine=%d", obsSpill, mWith.TotalSpill)
	}
	if mWith.TotalSpill == 0 {
		t.Error("pipeline was meant to spill; the spill-path hook went unexercised")
	}
	obsStages := extractSample(t, exp, "gradoop_stages_total ")
	if obsStages != float64(mWith.Stages) {
		t.Errorf("stages: registry=%v engine=%d", obsStages, mWith.Stages)
	}
}

// extractSample returns the value of the first exposition line starting with
// the given prefix (metric name plus trailing space for unlabelled samples).
func extractSample(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(line[len(prefix):], 64)
			if err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q in:\n%s", prefix, exposition)
	return 0
}

// TestObserverCountsRetries: injected worker failures surface in the
// retries counter, matching the engine's own metric.
func TestObserverCountsRetries(t *testing.T) {
	r := obs.NewRegistry()
	cfg := DefaultConfig(2)
	cfg.FaultPlan = &FaultPlan{Kills: []Kill{{Stage: 1, Partition: 0, Times: 2}}}
	e := NewEnv(cfg)
	e.SetObserver(NewObserver(r))
	d := FromSlice(e, ints(100))
	Map(d, func(x int) int { return x })
	m := e.Metrics()
	if m.Retries == 0 {
		t.Fatal("fault plan injected no retries")
	}
	if got := extractSample(t, r.Exposition(), "gradoop_stage_retries_total "); got != float64(m.Retries) {
		t.Fatalf("retries: registry=%v engine=%d", got, m.Retries)
	}
}

// TestDisabledObserverHotPathNoAlloc: with no observer (and no tracer) the
// engine's telemetry hooks are pure nil checks — zero allocations, the same
// guarantee the nil trace collector gives.
func TestDisabledObserverHotPathNoAlloc(t *testing.T) {
	e := NewEnv(DefaultConfig(2))
	allocs := testing.AllocsPerRun(1000, func() {
		e.beginStage("Map", false)
		e.chargeCPU(0, 10)
		e.chargeNet(1, 100)
		e.chargeSpill(0, 50)
		e.traceRowsIn(0, 5)
		e.traceRowsOut(0, 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled-telemetry hot path allocated %v per run", allocs)
	}
}

// TestEnabledObserverHotPathNoAlloc: even with an observer installed the
// per-stage and per-charge hooks allocate nothing once the histogram
// children exist.
func TestEnabledObserverHotPathNoAlloc(t *testing.T) {
	r := obs.NewRegistry()
	e := NewEnv(DefaultConfig(2))
	e.SetObserver(NewObserver(r))
	e.beginStage("Map", false) // warm the "Map" histogram child
	allocs := testing.AllocsPerRun(1000, func() {
		e.beginStage("Map", false)
		e.chargeNet(1, 100)
		e.chargeSpill(0, 50)
	})
	if allocs != 0 {
		t.Fatalf("enabled-telemetry hot path allocated %v per run", allocs)
	}
}

// TestCloneIsDeep: Clone copies the per-worker slices and preserves Jobs
// exactly (unlike Merge, which counts a raw snapshot as one job).
func TestCloneIsDeep(t *testing.T) {
	e := NewEnv(DefaultConfig(3))
	Map(FromSlice(e, ints(50)), func(x int) int { return x })
	s := e.Metrics()
	c := s.Clone()
	if !reflect.DeepEqual(s, c) {
		t.Fatalf("clone differs:\norig:  %+v\nclone: %+v", s, c)
	}
	if c.Jobs != 0 {
		t.Fatalf("clone invented jobs: %d", c.Jobs)
	}
	c.CPUElements[0] += 999
	if s.CPUElements[0] == c.CPUElements[0] {
		t.Fatal("clone aliases the original's slices")
	}
}
