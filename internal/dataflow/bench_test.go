package dataflow

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the engine primitives: these measure the real local
// throughput of the substrate (the simulated-time model is orthogonal).

func benchData(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 2654435761 % (n | 1)
	}
	return out
}

func BenchmarkFlatMap(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEnv(DefaultConfig(workers))
			d := FromSlice(e, benchData(100000))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FlatMap(d, func(x int, emit func(int)) {
					if x%3 != 0 {
						emit(x + 1)
					}
				})
			}
		})
	}
}

func BenchmarkShuffle(b *testing.B) {
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEnv(DefaultConfig(workers))
			d := FromSlice(e, benchData(100000))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shuffle(d, func(x int) uint64 { return uint64(x) })
			}
		})
	}
}

func BenchmarkRepartitionJoin(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEnv(Config{Workers: workers, MemoryPerWorker: 1 << 30})
			l := FromSlice(e, benchData(50000))
			r := FromSlice(e, benchData(50000))
			key := func(x int) uint64 { return uint64(x) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Join(l, r, key, key, func(a, c int, emit func(int)) { emit(a) }, RepartitionHash)
			}
		})
	}
}

func BenchmarkReduceByKey(b *testing.B) {
	e := NewEnv(DefaultConfig(8))
	d := FromSlice(e, benchData(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReduceByKey(d, func(x int) int { return x % 1024 }, func(a, c int) int { return a + c })
	}
}
