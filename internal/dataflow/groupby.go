package dataflow

import "hash/maphash"

var groupSeed = maphash.MakeSeed()

// hashComparable hashes any comparable key for partitioning. The seed is
// process-local; partition assignment is therefore stable within a run,
// which is all a single-process job requires. Distributed shuffles must
// not use it — see stableKey, which routes them through the seed-stable
// StableHash instead.
func hashComparable[K comparable](k K) uint64 {
	return maphash.Comparable(groupSeed, k)
}

// DistinctBy removes duplicates by key. It shuffles by key hash so that all
// candidates for a key meet on one worker, then deduplicates locally; the
// first occurrence (in deterministic partition order) wins.
func DistinctBy[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[T] {
	env := d.env
	s := shuffle(d, func(t T) uint64 { return stableKey(env, key(t)) })
	return MapPartition(s, func(part []T, emit func(T)) {
		seen := make(map[K]struct{}, len(part))
		for i, t := range part {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			k := key(t)
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			emit(t)
		}
	})
}

// Distinct removes duplicate elements of a comparable type.
func Distinct[T comparable](d *Dataset[T]) *Dataset[T] {
	return DistinctBy(d, func(t T) T { return t })
}

// KV is a key/value pair produced by grouping transformations.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// ReduceByKey groups elements by key and folds each group with reduce,
// combining locally before the shuffle (a combiner, as Flink does) so only
// one partial per key and partition crosses the network.
func ReduceByKey[T any, K comparable](d *Dataset[T], key func(T) K, reduce func(T, T) T) *Dataset[KV[K, T]] {
	env := d.env
	// Local pre-aggregation.
	partials := MapPartition(d, func(part []T, emit func(KV[K, T])) {
		acc := make(map[K]T, len(part))
		order := make([]K, 0, len(part))
		for i, t := range part {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			k := key(t)
			if prev, ok := acc[k]; ok {
				acc[k] = reduce(prev, t)
			} else {
				acc[k] = t
				order = append(order, k)
			}
		}
		for i, k := range order {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			emit(KV[K, T]{Key: k, Value: acc[k]})
		}
	})
	// Global aggregation after shuffling partials by key.
	s := shuffle(partials, func(kv KV[K, T]) uint64 { return stableKey(env, kv.Key) })
	return MapPartition(s, func(part []KV[K, T], emit func(KV[K, T])) {
		acc := make(map[K]T, len(part))
		order := make([]K, 0, len(part))
		for i, kv := range part {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			if prev, ok := acc[kv.Key]; ok {
				acc[kv.Key] = reduce(prev, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
		}
		for i, k := range order {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			emit(KV[K, T]{Key: k, Value: acc[k]})
		}
	})
}

// CountByKey counts elements per key.
func CountByKey[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[KV[K, int64]] {
	ones := Map(d, func(t T) KV[K, int64] { return KV[K, int64]{Key: key(t), Value: 1} })
	counted := ReduceByKey(ones, func(kv KV[K, int64]) K { return kv.Key },
		func(a, b KV[K, int64]) KV[K, int64] { return KV[K, int64]{Key: a.Key, Value: a.Value + b.Value} })
	return Map(counted, func(kv KV[K, KV[K, int64]]) KV[K, int64] { return kv.Value })
}

// GroupBy collects all elements of each group on one worker and hands the
// complete group to f. Use ReduceByKey where a fold suffices; GroupBy exists
// for holistic aggregates (e.g. building grouped super-vertices).
func GroupBy[T, U any, K comparable](d *Dataset[T], key func(T) K, f func(K, []T, func(U))) *Dataset[U] {
	env := d.env
	s := shuffle(d, func(t T) uint64 { return stableKey(env, key(t)) })
	return MapPartition(s, func(part []T, emit func(U)) {
		groups := make(map[K][]T)
		order := make([]K, 0)
		for i, t := range part {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			k := key(t)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], t)
		}
		for i, k := range order {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			f(k, groups[k], emit)
		}
	})
}
