package dataflow

import (
	"testing"

	"gradoop/internal/trace"
)

// TestTraceSpansMatchStages: every transformation the metrics count as a
// stage must produce exactly one span, in execution order, with the right
// kind, shuffle flag and row counts.
func TestTraceSpansMatchStages(t *testing.T) {
	env := NewEnv(DefaultConfig(4))
	col := trace.NewCollector()
	env.SetTracer(col)
	defer env.SetTracer(nil)

	data := make([]int, 1000)
	for i := range data {
		data[i] = i
	}
	d := FromSlice(env, data)
	doubled := FlatMap(d, func(v int, emit func(int)) { emit(v); emit(v + 1) })
	shuffled := PartitionByKey(doubled, func(v int) uint64 { return uint64(v) })
	if err := env.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := shuffled.Count(); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}

	m := env.Metrics()
	spans := col.Spans()
	if int64(len(spans)) != m.Stages {
		t.Fatalf("got %d spans for %d counted stages", len(spans), m.Stages)
	}
	if spans[0].Kind != "FlatMap" || spans[0].Shuffle {
		t.Errorf("span 1 = %s/shuffle=%v, want FlatMap/false", spans[0].Kind, spans[0].Shuffle)
	}
	if spans[1].Kind != "Shuffle" || !spans[1].Shuffle {
		t.Errorf("span 2 = %s/shuffle=%v, want Shuffle/true", spans[1].Kind, spans[1].Shuffle)
	}
	if in, out := spans[0].Rows(); in != 1000 || out != 2000 {
		t.Errorf("FlatMap rows = %d/%d, want 1000/2000", in, out)
	}
	if in, out := spans[1].Rows(); in != 2000 || out != 2000 {
		t.Errorf("Shuffle rows = %d/%d, want 2000/2000", in, out)
	}

	// Per-span cost mirrors must sum to the job-level counters.
	var cpu, net int64
	for _, s := range spans {
		for _, p := range s.Parts {
			cpu += p.CPUElements
			net += p.NetBytes
		}
	}
	if cpu != m.TotalCPU {
		t.Errorf("span CPU sum %d != metrics TotalCPU %d", cpu, m.TotalCPU)
	}
	if net != m.TotalNet {
		t.Errorf("span net sum %d != metrics TotalNet %d", net, m.TotalNet)
	}
	if net == 0 {
		t.Error("shuffle recorded no network bytes")
	}
}

// TestTraceRetrySpans: injected worker failures must appear as distinct
// failed attempts plus per-partition retry counts, and the retried
// partition's rows must not be double counted.
func TestTraceRetrySpans(t *testing.T) {
	env := NewEnv(DefaultConfig(4))
	env.InjectFaults(&FaultPlan{Kills: []Kill{{Stage: 1, Partition: 2, Times: 2}}})
	col := trace.NewCollector()
	env.SetTracer(col)
	defer env.SetTracer(nil)

	data := make([]int, 400)
	for i := range data {
		data[i] = i
	}
	out := FlatMap(FromSlice(env, data), func(v int, emit func(int)) { emit(v) })
	if err := env.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := out.Count(); got != 400 {
		t.Fatalf("count = %d, want 400", got)
	}

	spans := col.Spans()
	s := spans[0]
	if s.Retries() != 2 {
		t.Errorf("span retries = %d, want 2", s.Retries())
	}
	if m := env.Metrics(); m.Retries != s.Retries() {
		t.Errorf("metrics retries %d != span retries %d", m.Retries, s.Retries())
	}
	var failed, onPart2 int
	for _, a := range s.Attempts {
		if a.Part == 2 {
			onPart2++
		}
		if a.Failed {
			failed++
			if a.Part != 2 {
				t.Errorf("failed attempt on partition %d, want 2", a.Part)
			}
		}
	}
	if failed != 2 || onPart2 != 3 {
		t.Errorf("got %d failed / %d partition-2 attempts, want 2 failed of 3 total", failed, onPart2)
	}
	if in, out := s.Rows(); in != 400 || out != 400 {
		t.Errorf("rows = %d/%d, want 400/400 (retries must not double count)", in, out)
	}
	if s.Parts[2].Recovery <= 0 {
		t.Error("retried partition has no recovery time charged")
	}
}

// TestTraceIterationMark: stages inside a bulk iteration carry the
// superstep number.
func TestTraceIterationMark(t *testing.T) {
	env := NewEnv(DefaultConfig(2))
	col := trace.NewCollector()
	env.SetTracer(col)
	defer env.SetTracer(nil)

	d := FromSlice(env, []int{1, 2, 3})
	it := BulkIteration(d, 3, func(_ int, working *Dataset[int]) (*Dataset[int], *Dataset[int]) {
		next := FlatMap(working, func(v int, emit func(int)) { emit(v + 1) })
		return next, nil
	})
	if err := env.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := it.Collect(); len(got) != 0 {
		t.Fatalf("iteration emitted %v, want no results (nil per-superstep results)", got)
	}
	its := map[int]bool{}
	for _, s := range col.Spans() {
		its[s.Iteration] = true
	}
	for want := 1; want <= 3; want++ {
		if !its[want] {
			t.Errorf("no span recorded for superstep %d (got %v)", want, its)
		}
	}
}
