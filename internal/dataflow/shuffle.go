package dataflow

// mix64 is the splitmix64 finalizer, used to spread keys over partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString hashes a string key to a uint64 (FNV-1a, then mixed).
func HashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// shuffle redistributes d's elements so that every element lands on
// partition mix64(key(t)) % P. It accounts network bytes for every element
// that changes partitions and is deterministic: destination partitions
// concatenate the buckets of source partitions in source order.
func shuffle[T any](d *Dataset[T], key func(T) uint64) *Dataset[T] {
	return shuffleTagged(d, key, 0)
}

// shuffleTagged is shuffle with partition-reuse awareness: when tag is
// non-zero and the dataset is already partitioned under that tag, the
// exchange is skipped entirely (Flink's partition reuse). Otherwise the
// result carries the tag.
func shuffleTagged[T any](d *Dataset[T], key func(T) uint64, tag uint64) *Dataset[T] {
	env := d.env
	if env.Failed() {
		return Empty[T](env)
	}
	if tag != 0 && d.partTag == tag {
		return d
	}
	env.beginStage("Shuffle", true)
	w := len(d.parts)
	if w == 1 {
		// Single worker: nothing moves, but the pass over the data is real.
		env.chargeCPU(0, int64(len(d.parts[0])))
		env.traceRowsIn(0, int64(len(d.parts[0])))
		env.traceRowsOut(0, int64(len(d.parts[0])))
		if tag != 0 {
			tagged := *d
			tagged.partTag = tag
			return &tagged
		}
		return d
	}
	// buckets[src][dst]
	buckets := make([][][]T, w)
	moved := make([][]int64, w) // bytes sent from src destined to dst
	env.runParts(w, func(p int) {
		b := make([][]T, w)
		mv := make([]int64, w)
		for i, t := range d.parts[p] {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			q := int(mix64(key(t)) % uint64(w))
			b[q] = append(b[q], t)
			if q != p {
				mv[q] += sizeOf(t)
			}
		}
		env.chargeCPU(p, int64(len(d.parts[p])))
		env.traceRowsIn(p, int64(len(d.parts[p])))
		buckets[p] = b
		moved[p] = mv
	})
	out, ok := gatherExchange(env, buckets, moved)
	if !ok {
		return Empty[T](env)
	}
	return &Dataset[T]{env: env, parts: out, partTag: tag}
}

// gatherExchange concatenates per-source destination buckets into the
// destination partitions and charges received network bytes. It reports
// failure (aborted partitions leave nil buckets behind) instead of
// indexing into them. With a transport installed the concatenation spans
// processes: remote buckets travel encoded and only owned destinations are
// assembled (remoteExchange keeps the same source-order concatenation, so
// the distributed result is bit-identical).
func gatherExchange[T any](env *Env, buckets [][][]T, moved [][]int64) ([][]T, bool) {
	if env.Failed() {
		return nil, false
	}
	if env.transport != nil {
		return remoteExchange(env, buckets)
	}
	w := len(buckets)
	out := make([][]T, w)
	for q := 0; q < w; q++ {
		var n int
		var bytes int64
		for p := 0; p < w; p++ {
			n += len(buckets[p][q])
			bytes += moved[p][q]
		}
		part := make([]T, 0, n)
		for p := 0; p < w; p++ {
			part = append(part, buckets[p][q]...)
		}
		if env.governor != nil {
			// The destination partition is a fresh materialization of the
			// whole exchange output (the send-side buckets are transient), so
			// it is charged in full — not just the cross-partition share the
			// network model bills. Partition granularity is enough here: a
			// shuffle's output can never exceed its input.
			var mem int64
			for _, t := range part {
				mem += sizeOf(t)
			}
			if !env.chargeMem(q, mem) {
				return nil, false
			}
		}
		out[q] = part
		env.chargeNet(q, bytes)
		env.traceRowsOut(q, int64(n))
	}
	return out, true
}

// Rebalance redistributes elements round-robin so all partitions have equal
// sizes, charging network cost for moved elements. It models Flink's
// rebalance() and is used to break skew after expensive filters. An
// element's destination is its global index modulo the worker count, which
// is deterministic and needs no state shared between partition goroutines.
func Rebalance[T any](d *Dataset[T]) *Dataset[T] {
	env := d.env
	if env.Failed() {
		return Empty[T](env)
	}
	env.beginStage("Rebalance", true)
	w := len(d.parts)
	if w == 1 {
		env.chargeCPU(0, int64(len(d.parts[0])))
		env.traceRowsIn(0, int64(len(d.parts[0])))
		env.traceRowsOut(0, int64(len(d.parts[0])))
		return d
	}
	// The offset table must reflect every process's partition sizes, not
	// just the locally owned ones, or destinations diverge across workers.
	counts, ok := globalPartCounts(d)
	if !ok {
		return Empty[T](env)
	}
	offs := make([]int, w) // global index of each partition's first element
	total := 0
	for p := 0; p < w; p++ {
		offs[p] = total
		total += int(counts[p])
	}
	buckets := make([][][]T, w)
	moved := make([][]int64, w)
	env.runParts(w, func(p int) {
		b := make([][]T, w)
		mv := make([]int64, w)
		for i, t := range d.parts[p] {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			q := (offs[p] + i) % w
			b[q] = append(b[q], t)
			if q != p {
				mv[q] += sizeOf(t)
			}
		}
		env.chargeCPU(p, int64(len(d.parts[p])))
		env.traceRowsIn(p, int64(len(d.parts[p])))
		buckets[p] = b
		moved[p] = mv
	})
	out, ok := gatherExchange(env, buckets, moved)
	if !ok {
		return Empty[T](env)
	}
	return &Dataset[T]{env: env, parts: out}
}

// PartitionByKey exposes the hash shuffle for callers that want explicit
// co-partitioning before repeated joins on the same key.
func PartitionByKey[T any](d *Dataset[T], key func(T) uint64) *Dataset[T] {
	return shuffle(d, key)
}

// broadcast replicates all of d's elements to every partition, charging
// network cost of size × (P-1). It returns the replicated slice.
func broadcast[T any](d *Dataset[T]) []T {
	env := d.env
	if env.Failed() {
		return nil
	}
	env.beginStage("Broadcast", true)
	var all []T
	if env.transport != nil {
		// Distributed: every process contributes its owned partitions and
		// receives the rest, assembled in partition order — the same slice a
		// single process would Collect.
		var ok bool
		if all, ok = allGatherParts(env, d); !ok {
			return nil
		}
	} else {
		all = d.Collect()
	}
	var bytes int64
	for _, t := range all {
		bytes += sizeOf(t)
	}
	// One replica is what this process actually materializes (the slice is
	// shared by every partition goroutine), so one replica is what the
	// governor charges — the per-worker fan-out below is network cost only.
	// In a distributed job each process charges only its owned partitions,
	// so the merged metrics match the single-process totals.
	if env.transport == nil || env.transport.Owns(0) {
		if !env.chargeMem(0, bytes) {
			return nil
		}
	}
	w := len(d.parts)
	for q := 0; q < w; q++ {
		if env.transport != nil && !env.transport.Owns(q) {
			continue
		}
		// Every worker receives the full copy except the share it already had;
		// approximating as full size keeps the model simple and pessimistic.
		env.chargeNet(q, bytes)
		env.traceRowsOut(q, int64(len(all)))
	}
	return all
}
