package dataflow

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrEnvMismatch is reported when a binary transformation (Union, Join,
// CoGroup) receives operands that belong to different execution
// environments. Mixing environments would silently corrupt metrics and
// partitioning, so the engine fails the job instead; the error surfaces
// from Env.Err / core.Execute and matches errors.Is(err, ErrEnvMismatch).
var ErrEnvMismatch = errors.New("dataflow: operands belong to different environments")

// mismatch guards binary transformations against operands from different
// environments: it fails both environments with ErrEnvMismatch (wrapped
// with the operation name) and reports whether a mismatch was found. The
// caller returns an empty dataset; the error surfaces through Env.Err.
func mismatch(a, b *Env, op string) bool {
	if a == b {
		return false
	}
	err := fmt.Errorf("%s: %w", op, ErrEnvMismatch)
	a.fail(err)
	b.fail(err)
	return true
}

// JobError is the structured failure of one dataflow job: the stage and
// partition where the first failure happened, the cause (a recovered panic,
// an exhausted retry budget, or a cancellation), and — for panics — the
// goroutine stack at the point of recovery. Error() is a single line; the
// stack is kept out of the message so CLIs can print clean errors while
// programmatic callers still get the full trace.
type JobError struct {
	// Stage is the 1-based transformation number within the job, in the
	// same numbering MetricsSnapshot.Stages counts.
	Stage int64
	// Partition is the worker whose execution failed.
	Partition int
	// Cause is the underlying error (for a recovered panic, the panic
	// value wrapped as an error).
	Cause error
	// Stack is the goroutine stack captured when a panic was recovered;
	// nil for non-panic failures.
	Stack []byte
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("dataflow: stage %d, partition %d: %v", e.Stage, e.Partition, e.Cause)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *JobError) Unwrap() error { return e.Cause }

// workerFailure is the sentinel panic raised by fault injection: it marks a
// simulated worker crash, which — unlike a genuine UDF panic — is retryable
// by re-executing the lost partition from its materialized stage input.
type workerFailure struct {
	stage     int64
	partition int
}

// Error implements error.
func (w *workerFailure) Error() string {
	return fmt.Sprintf("dataflow: injected worker failure at stage %d, partition %d", w.stage, w.partition)
}

// A Kill is one deterministic fault-injection point: worker Partition dies
// at stage Stage. Times controls how many consecutive execution attempts of
// that (stage, partition) die before one succeeds; 0 means 1. Setting Times
// above the plan's retry budget turns the kill into a permanent failure.
type Kill struct {
	// Stage is the 1-based stage number at which the worker dies, in
	// MetricsSnapshot.Stages numbering. Stages that involve no partitioned
	// execution on the killed worker (e.g. a broadcast collect) never fire.
	Stage int64
	// Partition is the worker to kill.
	Partition int
	// Times is the number of consecutive attempts that die (default 1).
	Times int
}

// FaultPlan describes deterministic worker failures to inject into an
// environment, plus the recovery policy. The engine recovers a killed
// worker Flink-style: the partition's stage input is already materialized
// (lineage), so the stage is simply re-executed on that partition after a
// simulated redeployment backoff. Recovery cost — the backoff plus the
// recomputed work — is charged to the job's metrics, making the overhead
// visible in MetricsSnapshot and the simulated runtime.
//
// The zero value of the policy fields selects the defaults (3 retries,
// 1ms simulated backoff that doubles per attempt).
type FaultPlan struct {
	// MaxRetries bounds the recovery attempts per (stage, partition)
	// before the job fails with a JobError; <= 0 selects 3.
	MaxRetries int
	// Backoff is the simulated delay before a lost partition is
	// re-executed; it doubles on every further attempt. <= 0 selects 1ms.
	Backoff time.Duration
	// Kills is the list of injection points. Multiple entries for the same
	// (stage, partition) accumulate their Times.
	Kills []Kill
}

func (p *FaultPlan) maxRetries() int {
	if p == nil || p.MaxRetries <= 0 {
		return 3
	}
	return p.MaxRetries
}

func (p *FaultPlan) backoff(attempt int) time.Duration {
	b := 1 * time.Millisecond
	if p != nil && p.Backoff > 0 {
		b = p.Backoff
	}
	if attempt > 10 {
		attempt = 10
	}
	return b << attempt
}

// killBudget returns the total configured Times for a (stage, partition).
func (p *FaultPlan) killBudget(stage int64, partition int) int {
	if p == nil {
		return 0
	}
	total := 0
	for _, k := range p.Kills {
		if k.Stage == stage && k.Partition == partition {
			t := k.Times
			if t <= 0 {
				t = 1
			}
			total += t
		}
	}
	return total
}

// RandomKills generates n deterministic kill points spread over stages
// [1, stages] and partitions [0, workers), seeded so that an experiment's
// failure schedule is reproducible. It is the generator behind the
// recovery-overhead experiment (cmd/bench -exp recovery).
func RandomKills(seed int64, n int, stages int64, workers int) []Kill {
	if stages < 1 {
		stages = 1
	}
	if workers < 1 {
		workers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kills := make([]Kill, 0, n)
	for i := 0; i < n; i++ {
		kills = append(kills, Kill{
			Stage:     1 + rng.Int63n(stages),
			Partition: rng.Intn(workers),
		})
	}
	return kills
}
