package dataflow

import (
	"encoding/binary"
	"fmt"
)

// Transport connects one process's share of a distributed dataflow job to
// its peers. The execution model is SPMD: every process runs the identical
// deterministic operator program over a fixed logical partition count P
// (the Env's worker count), owns a subset of the partitions — non-owned
// partitions are empty slices, so every transformation works unchanged —
// and meets the others only at exchange points, where the transport moves
// encoded buckets between processes. Because P and the per-partition
// contents and order are fixed by the program, results are bit-identical
// for any ownership assignment, including the remapped one a recovery
// attempt runs with.
//
// All methods are called sequentially from the job's driving goroutine
// (runParts parallelism is confined to a stage's interior), so transports
// may keep an internal sequence counter to pair collective calls across
// processes. The stage argument is the current stage number, used for
// per-stage wire-byte attribution only.
type Transport interface {
	// Owns reports whether this process owns logical partition p.
	Owns(p int) bool

	// Exchange performs the all-to-all move of one shuffle: outgoing[p][q]
	// is the encoded bucket from owned partition p to partition q (rows for
	// non-owned p are ignored and may be nil). It returns incoming[q][p] —
	// the encoded bucket from remote partition p to owned partition q — with
	// entries for non-owned q and locally-owned p left nil (the caller has
	// those buckets in memory). Errors (peer loss, abort, corrupt frames)
	// must be returned, never hung on.
	Exchange(stage int64, outgoing [][][]byte) (incoming [][][]byte, err error)

	// AllGather replicates one blob per owned partition to every process:
	// blobs[p] is set for owned p, nil otherwise; the result has all P
	// entries filled (locally-owned entries may be returned as passed).
	AllGather(stage int64, blobs [][]byte) ([][]byte, error)
}

// SetTransport installs (or, with nil, removes) the job's shuffle
// transport. Must only be called between jobs. Without a transport (the
// default) every exchange hook reduces to a nil check — the single-process
// engine is byte-for-byte the code that ran before transports existed —
// and with one installed, shuffles, broadcasts and the loop-convergence
// checks become distributed collectives.
func (e *Env) SetTransport(t Transport) { e.transport = t }

// Transport returns the installed transport, or nil.
func (e *Env) Transport() Transport { return e.transport }

// WireEncoder is implemented (with a value receiver) by element types that
// can append their wire form; WireDecoder (pointer receiver) by those that
// can read it back. Types crossing a remote exchange must implement both —
// Embedding, the operator layer's join records, and the engine's own
// counters do; a type that does not fails the job with a structured error
// instead of silently mis-shuffling.
type WireEncoder interface {
	AppendWire(dst []byte) []byte
}

// WireDecoder is the decoding half of WireEncoder.
type WireDecoder interface {
	DecodeWireInto(b []byte) ([]byte, error)
}

// encodeBucket encodes one bucket as a uint32 count followed by each
// element's wire form.
func encodeBucket[T any](bucket []T) ([]byte, error) {
	dst := binary.BigEndian.AppendUint32(nil, uint32(len(bucket)))
	for i := range bucket {
		enc, ok := any(bucket[i]).(WireEncoder)
		if !ok {
			return nil, fmt.Errorf("dataflow: element type %T is not wire-encodable for a remote exchange", bucket[i])
		}
		dst = enc.AppendWire(dst)
	}
	return dst, nil
}

// decodeBucket decodes an encodeBucket blob.
func decodeBucket[T any](b []byte) ([]T, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("dataflow: truncated bucket header (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n == 0 {
		return nil, nil
	}
	if n < 0 || n > len(b) {
		// Every element costs at least one byte on the wire; reject hostile
		// counts before allocating.
		return nil, fmt.Errorf("dataflow: bucket count %d exceeds payload (%d bytes)", n, len(b))
	}
	out := make([]T, n)
	for i := range out {
		dec, ok := any(&out[i]).(WireDecoder)
		if !ok {
			return nil, fmt.Errorf("dataflow: element type %T is not wire-decodable for a remote exchange", out[i])
		}
		rest, err := dec.DecodeWireInto(b)
		if err != nil {
			return nil, fmt.Errorf("dataflow: bucket element %d/%d: %w", i, n, err)
		}
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("dataflow: bucket has %d trailing bytes", len(b))
	}
	return out, nil
}

// remoteExchange is gatherExchange's distributed path: owned buckets are
// encoded and handed to the transport, remote buckets arrive encoded, and
// each owned destination partition is assembled in source-partition order —
// the same concatenation order as the in-process path, which is what makes
// the result independent of the ownership assignment. Charges (network
// model bytes, governor memory, trace rows) are applied only to owned
// partitions, so per-process metrics for owned partitions match what a
// single process would record for them and the coordinator's merge
// reproduces the single-process totals.
func remoteExchange[T any](env *Env, buckets [][][]T) ([][]T, bool) {
	t := env.transport
	w := len(buckets)
	stage := env.metrics.stageCount()
	outgoing := make([][][]byte, w)
	for p := 0; p < w; p++ {
		if !t.Owns(p) {
			continue
		}
		if buckets[p] == nil {
			// The partition goroutine aborted before filling its buckets; the
			// env already carries the reason.
			return nil, false
		}
		row := make([][]byte, w)
		for q := 0; q < w; q++ {
			if t.Owns(q) {
				continue // stays in this process; assembled from memory below
			}
			blob, err := encodeBucket(buckets[p][q])
			if err != nil {
				env.fail(&JobError{Stage: stage, Partition: p, Cause: err})
				return nil, false
			}
			row[q] = blob
		}
		outgoing[p] = row
	}
	incoming, err := t.Exchange(stage, outgoing)
	if err != nil {
		env.fail(&JobError{Stage: stage, Cause: err})
		return nil, false
	}
	out := make([][]T, w)
	for q := 0; q < w; q++ {
		if !t.Owns(q) {
			continue
		}
		parts := make([][]T, w)
		var n int
		var bytes int64
		for p := 0; p < w; p++ {
			var bucket []T
			if t.Owns(p) {
				bucket = buckets[p][q]
			} else {
				bucket, err = decodeBucket[T](incoming[q][p])
				if err != nil {
					env.fail(&JobError{Stage: stage, Partition: q, Cause: err})
					return nil, false
				}
			}
			if p != q {
				for _, e := range bucket {
					bytes += sizeOf(e)
				}
			}
			parts[p] = bucket
			n += len(bucket)
		}
		part := make([]T, 0, n)
		for p := 0; p < w; p++ {
			part = append(part, parts[p]...)
		}
		if env.governor != nil {
			var mem int64
			for _, e := range part {
				mem += sizeOf(e)
			}
			if !env.chargeMem(q, mem) {
				return nil, false
			}
		}
		out[q] = part
		env.chargeNet(q, bytes)
		env.traceRowsOut(q, int64(n))
	}
	return out, true
}

// allGatherParts replicates every partition of d to every process and
// returns the full collection in partition order — broadcast's distributed
// gather. Returns nil after failing the env on any error.
func allGatherParts[T any](env *Env, d *Dataset[T]) ([]T, bool) {
	t := env.transport
	w := len(d.parts)
	stage := env.metrics.stageCount()
	blobs := make([][]byte, w)
	for p := 0; p < w; p++ {
		if !t.Owns(p) {
			continue
		}
		blob, err := encodeBucket(d.parts[p])
		if err != nil {
			env.fail(&JobError{Stage: stage, Partition: p, Cause: err})
			return nil, false
		}
		blobs[p] = blob
	}
	all, err := t.AllGather(stage, blobs)
	if err != nil {
		env.fail(&JobError{Stage: stage, Cause: err})
		return nil, false
	}
	var out []T
	for p := 0; p < w; p++ {
		if t.Owns(p) {
			out = append(out, d.parts[p]...)
			continue
		}
		bucket, err := decodeBucket[T](all[p])
		if err != nil {
			env.fail(&JobError{Stage: stage, Partition: p, Cause: err})
			return nil, false
		}
		out = append(out, bucket...)
	}
	return out, true
}

// globalPartCounts returns every logical partition's element count across
// all processes. In-process it is a local scan; with a transport, owned
// counts are all-gathered as fixed-width frames. Used where per-partition
// sizes feed deterministic decisions every process must agree on
// (Rebalance's offset table, the global emptiness checks).
func globalPartCounts[T any](d *Dataset[T]) ([]int64, bool) {
	env := d.env
	counts := make([]int64, len(d.parts))
	t := env.transport
	if t == nil {
		for p, part := range d.parts {
			counts[p] = int64(len(part))
		}
		return counts, true
	}
	stage := env.metrics.stageCount()
	blobs := make([][]byte, len(d.parts))
	for p, part := range d.parts {
		if !t.Owns(p) {
			continue
		}
		blobs[p] = binary.BigEndian.AppendUint64(nil, uint64(len(part)))
	}
	all, err := t.AllGather(stage, blobs)
	if err != nil {
		env.fail(&JobError{Stage: stage, Cause: err})
		return nil, false
	}
	for p := range counts {
		if t.Owns(p) {
			counts[p] = int64(len(d.parts[p]))
			continue
		}
		if len(all[p]) != 8 {
			env.fail(&JobError{Stage: stage, Partition: p, Cause: fmt.Errorf("dataflow: bad count frame (%d bytes)", len(all[p]))})
			return nil, false
		}
		counts[p] = int64(binary.BigEndian.Uint64(all[p]))
	}
	return counts, true
}

// GlobalCount returns the dataset's element count across every process of
// a distributed job. Without a transport it equals Count; with one it is a
// collective all processes must reach together (like any exchange). On
// transport failure it returns 0 with the env failed, which terminates the
// convergence loops that call it.
func (d *Dataset[T]) GlobalCount() int64 {
	if d.env.transport == nil {
		return d.Count()
	}
	counts, ok := globalPartCounts(d)
	if !ok {
		return 0
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n
}

// GlobalIsEmpty reports whether the dataset is empty across every process.
// Loop-convergence checks (bulk iteration, variable-length expansion) must
// use this rather than IsEmpty: a process owning only drained partitions
// would otherwise leave the loop while its peers continue, and the
// collective exchanges inside would deadlock on the missing participant.
func (d *Dataset[T]) GlobalIsEmpty() bool {
	if d.env.transport == nil {
		return d.Count() == 0
	}
	return d.GlobalCount() == 0
}
