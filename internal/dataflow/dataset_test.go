package dataflow

import (
	"sort"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func env(workers int) *Env { return NewEnv(DefaultConfig(workers)) }

func TestFromSliceRoundTrip(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		d := FromSlice(env(w), ints(100))
		got := d.Collect()
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d elements, want 100", w, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: order not preserved at %d: got %d", w, i, v)
			}
		}
		if d.Partitions() != w {
			t.Errorf("workers=%d: partitions=%d", w, d.Partitions())
		}
	}
}

func TestFromSliceSmallerThanWorkers(t *testing.T) {
	d := FromSlice(env(8), ints(3))
	if got := d.Count(); got != 3 {
		t.Fatalf("count=%d, want 3", got)
	}
}

func TestFromPartitionsPadsAndFolds(t *testing.T) {
	e := env(3)
	d := FromPartitions(e, [][]int{{1}, {2}, {3}, {4}, {5}})
	if got := d.Count(); got != 5 {
		t.Fatalf("count=%d want 5", got)
	}
	if d.Partitions() != 3 {
		t.Fatalf("partitions=%d want 3", d.Partitions())
	}
	d2 := FromPartitions(e, [][]int{{1}})
	if d2.Partitions() != 3 || d2.Count() != 1 {
		t.Fatalf("short input not padded: parts=%d count=%d", d2.Partitions(), d2.Count())
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	d := FromSlice(env(4), ints(10))
	doubled := Map(d, func(x int) int { return 2 * x }).Collect()
	for i, v := range doubled {
		if v != 2*i {
			t.Fatalf("map: at %d got %d", i, v)
		}
	}
	even := Filter(d, func(x int) bool { return x%2 == 0 })
	if got := even.Count(); got != 5 {
		t.Fatalf("filter count=%d want 5", got)
	}
	fm := FlatMap(d, func(x int, emit func(int)) {
		for j := 0; j < x; j++ {
			emit(x)
		}
	})
	if got := fm.Count(); got != 45 {
		t.Fatalf("flatmap count=%d want 45", got)
	}
}

func TestMapPartitionSeesWholePartition(t *testing.T) {
	d := FromSlice(env(4), ints(100))
	sizes := MapPartition(d, func(part []int, emit func(int)) { emit(len(part)) }).Collect()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 100 {
		t.Fatalf("partition sizes sum to %d", total)
	}
	if len(sizes) != 4 {
		t.Fatalf("expected 4 partition outputs, got %d", len(sizes))
	}
}

func TestUnion(t *testing.T) {
	e := env(3)
	a := FromSlice(e, ints(5))
	b := FromSlice(e, []int{10, 11})
	u := Union(a, b)
	if got := u.Count(); got != 7 {
		t.Fatalf("union count=%d want 7", got)
	}
	if got := Union(a, Empty[int](e)).Count(); got != 5 {
		t.Fatalf("union with empty: %d", got)
	}
}

func TestShufflePreservesMultisetAndGroupsKeys(t *testing.T) {
	e := env(5)
	d := FromSlice(e, ints(1000))
	s := shuffle(d, func(x int) uint64 { return uint64(x % 17) })
	got := s.Collect()
	if len(got) != 1000 {
		t.Fatalf("shuffle lost elements: %d", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("shuffle changed multiset at %d: %d", i, v)
		}
	}
	// All elements with the same key must be in the same partition.
	keyPart := map[uint64]int{}
	for p, part := range s.parts {
		for _, v := range part {
			k := uint64(v % 17)
			if prev, ok := keyPart[k]; ok && prev != p {
				t.Fatalf("key %d split across partitions %d and %d", k, prev, p)
			}
			keyPart[k] = p
		}
	}
}

func TestShuffleSingleWorkerNoNet(t *testing.T) {
	e := env(1)
	d := FromSlice(e, ints(10))
	shuffle(d, func(x int) uint64 { return uint64(x) })
	m := e.Metrics()
	if m.TotalNet != 0 {
		t.Fatalf("single-worker shuffle moved %d bytes", m.TotalNet)
	}
}

func TestRebalanceEvensOutSkew(t *testing.T) {
	e := env(4)
	// Everything starts on one partition.
	parts := [][]int{ints(1000), nil, nil, nil}
	d := FromPartitions(e, parts)
	r := Rebalance(d)
	for p, part := range r.parts {
		if len(part) < 150 || len(part) > 350 {
			t.Fatalf("partition %d badly balanced: %d", p, len(part))
		}
	}
	if r.Count() != 1000 {
		t.Fatalf("rebalance lost data")
	}
}

func TestJoinBasic(t *testing.T) {
	for _, hint := range []JoinHint{RepartitionHash, BroadcastLeft} {
		e := env(4)
		l := FromSlice(e, []int{1, 2, 3, 4})
		r := FromSlice(e, []int{2, 2, 4, 6})
		j := Join(l, r,
			func(x int) uint64 { return uint64(x) },
			func(x int) uint64 { return uint64(x) },
			func(a, b int, emit func([2]int)) { emit([2]int{a, b}) }, hint)
		got := j.Collect()
		if len(got) != 3 { // 2-2, 2-2, 4-4
			t.Fatalf("hint=%d join produced %d rows, want 3: %v", hint, len(got), got)
		}
		for _, pair := range got {
			if pair[0] != pair[1] {
				t.Fatalf("hint=%d join matched unequal keys: %v", hint, pair)
			}
		}
	}
}

func TestJoinFlatJoinCanDrop(t *testing.T) {
	e := env(2)
	l := FromSlice(e, []int{1, 2, 3})
	r := FromSlice(e, []int{1, 2, 3})
	j := Join(l, r,
		func(x int) uint64 { return uint64(x) },
		func(x int) uint64 { return uint64(x) },
		func(a, b int, emit func(int)) {
			if a%2 == 1 {
				emit(a + b)
			}
		}, RepartitionHash)
	got := j.Collect()
	sort.Ints(got)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("flat join semantics wrong: %v", got)
	}
}

func TestJoinDuplicateKeysCrossProduct(t *testing.T) {
	e := env(3)
	l := FromSlice(e, []int{7, 7, 7})
	r := FromSlice(e, []int{7, 7})
	j := Join(l, r,
		func(x int) uint64 { return uint64(x) },
		func(x int) uint64 { return uint64(x) },
		func(a, b int, emit func(int)) { emit(a * b) }, RepartitionHash)
	if got := j.Count(); got != 6 {
		t.Fatalf("cross product size=%d want 6", got)
	}
}

func TestDistinct(t *testing.T) {
	e := env(4)
	d := FromSlice(e, []int{1, 2, 2, 3, 3, 3, 4})
	got := Distinct(d).Collect()
	sort.Ints(got)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("distinct=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct=%v", got)
		}
	}
}

func TestDistinctBy(t *testing.T) {
	e := env(4)
	type rec struct{ k, v int }
	d := FromSlice(e, []rec{{1, 10}, {1, 11}, {2, 20}, {2, 21}, {3, 30}})
	got := DistinctBy(d, func(r rec) int { return r.k })
	if got.Count() != 3 {
		t.Fatalf("distinctBy count=%d", got.Count())
	}
}

func TestReduceByKeyAndCountByKey(t *testing.T) {
	e := env(4)
	d := FromSlice(e, ints(100))
	sums := ReduceByKey(d, func(x int) int { return x % 3 }, func(a, b int) int { return a + b }).Collect()
	if len(sums) != 3 {
		t.Fatalf("groups=%d", len(sums))
	}
	total := 0
	for _, kv := range sums {
		total += kv.Value
	}
	if total != 4950 {
		t.Fatalf("sum of groups=%d want 4950", total)
	}
	counts := CountByKey(d, func(x int) int { return x % 4 }).Collect()
	var n int64
	for _, kv := range counts {
		n += kv.Value
	}
	if n != 100 {
		t.Fatalf("countByKey total=%d", n)
	}
}

func TestGroupBy(t *testing.T) {
	e := env(3)
	d := FromSlice(e, ints(30))
	sizes := GroupBy(d, func(x int) int { return x % 5 }, func(k int, group []int, emit func(int)) {
		emit(len(group))
	}).Collect()
	if len(sizes) != 5 {
		t.Fatalf("groups=%d want 5", len(sizes))
	}
	for _, s := range sizes {
		if s != 6 {
			t.Fatalf("group size=%d want 6", s)
		}
	}
}

func TestBulkIteration(t *testing.T) {
	e := env(4)
	// Start with {1..10}; each iteration doubles values < 100 and retires
	// values >= 50 into the result.
	init := FromSlice(e, ints(10))
	res := BulkIteration(init, 100, func(it int, working *Dataset[int]) (*Dataset[int], *Dataset[int]) {
		doubled := Map(working, func(x int) int { return 2 * x })
		next := Filter(doubled, func(x int) bool { return x < 50 })
		done := Filter(doubled, func(x int) bool { return x >= 50 })
		return next, done
	})
	got := res.Collect()
	sort.Ints(got)
	// 0 never exits; everything else doubles until it crosses 50.
	// 1→64, 2→64, 3→96, 4→64, 5→80, 6→96, 7→56, 8→64, 9→72
	want := []int{56, 64, 64, 64, 64, 72, 80, 96, 96}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestBulkIterationRespectsMaxIterations(t *testing.T) {
	e := env(2)
	init := FromSlice(e, []int{1})
	iters := 0
	BulkIteration(init, 5, func(it int, w *Dataset[int]) (*Dataset[int], *Dataset[int]) {
		iters = it
		return w, nil // never terminates on its own
	})
	if iters != 5 {
		t.Fatalf("ran %d iterations, want 5", iters)
	}
}

func TestMetricsCPUAndStages(t *testing.T) {
	e := env(4)
	d := FromSlice(e, ints(100))
	Map(d, func(x int) int { return x })
	m := e.Metrics()
	if m.TotalCPU != 100 {
		t.Fatalf("cpu elements=%d want 100", m.TotalCPU)
	}
	if m.Stages != 1 {
		t.Fatalf("stages=%d want 1", m.Stages)
	}
	e.ResetMetrics()
	if got := e.Metrics(); got.TotalCPU != 0 || got.Stages != 0 {
		t.Fatalf("reset did not clear metrics: %+v", got)
	}
}

func TestMetricsNetBytesOnShuffle(t *testing.T) {
	e := env(4)
	d := FromSlice(e, ints(1000))
	shuffle(d, func(x int) uint64 { return uint64(x) })
	m := e.Metrics()
	if m.TotalNet == 0 {
		t.Fatal("expected network traffic on multi-worker shuffle")
	}
	if m.Shuffles != 1 {
		t.Fatalf("shuffles=%d want 1", m.Shuffles)
	}
}

type fatElem struct{ pad [1]byte }

func (fatElem) SizeBytes() int { return 1 << 20 } // 1 MiB accounted size

func TestJoinSpillsWhenBuildExceedsMemory(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemoryPerWorker = 4 << 20 // 4 MiB
	e := NewEnv(cfg)
	build := make([]fatElem, 16) // 16 MiB accounted
	probe := make([]fatElem, 4)
	l := FromSlice(e, build)
	r := FromSlice(e, probe)
	Join(l, r,
		func(fatElem) uint64 { return 1 },
		func(fatElem) uint64 { return 2 },
		func(a, b fatElem, emit func(int)) { emit(0) }, RepartitionHash)
	if m := e.Metrics(); m.TotalSpill == 0 {
		t.Fatal("expected spill with build side over memory budget")
	}
	// With plenty of memory there must be no spill.
	cfg.MemoryPerWorker = 1 << 30
	e2 := NewEnv(cfg)
	Join(FromSlice(e2, build), FromSlice(e2, probe),
		func(fatElem) uint64 { return 1 },
		func(fatElem) uint64 { return 2 },
		func(a, b fatElem, emit func(int)) { emit(0) }, RepartitionHash)
	if m := e2.Metrics(); m.TotalSpill != 0 {
		t.Fatalf("unexpected spill: %d", m.TotalSpill)
	}
}

func TestSimulatedTimeDecreasesWithWorkers(t *testing.T) {
	run := func(workers int) (sim int64) {
		e := env(workers)
		d := FromSlice(e, ints(200000))
		Filter(d, func(x int) bool { return x%2 == 0 })
		return int64(e.Metrics().SimTime)
	}
	t1, t8 := run(1), run(8)
	if t8 >= t1 {
		t.Fatalf("no speedup: 1w=%d 8w=%d", t1, t8)
	}
}

func TestSkewMetric(t *testing.T) {
	e := env(4)
	parts := [][]int{ints(900), ints(30), ints(30), ints(40)}
	d := FromPartitions(e, parts)
	Map(d, func(x int) int { return x })
	if s := e.Metrics().Skew(); s < 3 {
		t.Fatalf("skew=%f, expected heavily skewed (>3)", s)
	}
}

func TestQuickShuffleAndDistinctInvariants(t *testing.T) {
	f := func(data []uint16, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		e := env(workers)
		vals := make([]int, len(data))
		for i, v := range data {
			vals[i] = int(v % 64)
		}
		d := FromSlice(e, vals)
		s := shuffle(d, func(x int) uint64 { return uint64(x) })
		if int(s.Count()) != len(vals) {
			return false
		}
		uniq := map[int]struct{}{}
		for _, v := range vals {
			uniq[v] = struct{}{}
		}
		return int(Distinct(d).Count()) == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHashString(t *testing.T) {
	if HashString("alice") == HashString("bob") {
		t.Fatal("suspicious collision")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("not deterministic")
	}
}
