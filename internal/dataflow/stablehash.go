package dataflow

import (
	"fmt"
	"math"
	"reflect"
)

// StableHash hashes a comparable key to a 64-bit value that is identical in
// every process: FNV-1a over the key's canonical binary form, finished with
// the splitmix64 mixer (the same pipeline as HashString). The grouping
// transformations historically partitioned with maphash.Comparable, whose
// seed is randomized per process — correct within one process, but in a
// distributed shuffle the same key would land on different workers in
// different processes and groups would silently split. Remote shuffles
// therefore use StableHash (see stableKey); the process-local path keeps
// maphash, which is faster and seed-hardened.
func StableHash[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		return HashString(v)
	case uint64:
		return mix64(v)
	case int64:
		return mix64(uint64(v))
	case int:
		return mix64(uint64(int64(v)))
	case int32:
		return mix64(uint64(int64(v)))
	case uint32:
		return mix64(uint64(v))
	case int16:
		return mix64(uint64(int64(v)))
	case uint16:
		return mix64(uint64(v))
	case int8:
		return mix64(uint64(int64(v)))
	case uint8:
		return mix64(uint64(v))
	case uintptr:
		return mix64(uint64(v))
	case float64:
		return mix64(math.Float64bits(v))
	case float32:
		return mix64(uint64(math.Float32bits(v)))
	case bool:
		if v {
			return mix64(1)
		}
		return mix64(0)
	}
	// Named types over those kinds (epgm.ID and friends) hash identically to
	// their underlying representation; everything genuinely structured falls
	// back to a canonical string rendering prefixed by the dynamic type name,
	// which is stable across processes built from the same source.
	rv := reflect.ValueOf(k)
	switch rv.Kind() {
	case reflect.String:
		return HashString(rv.String())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return mix64(uint64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return mix64(rv.Uint())
	case reflect.Float32:
		return mix64(uint64(math.Float32bits(float32(rv.Float()))))
	case reflect.Float64:
		return mix64(math.Float64bits(rv.Float()))
	case reflect.Bool:
		if rv.Bool() {
			return mix64(1)
		}
		return mix64(0)
	default:
		return HashString(fmt.Sprintf("%T\x00%v", k, k))
	}
}

// stableKey selects the partitioning hash for grouping shuffles: the
// process-seeded maphash when the job runs inside one process (any stable
// assignment works, and maphash is cheapest), the seed-stable StableHash
// when a transport is installed and the shuffle spans processes — every
// worker must route a key to the same partition or groups split.
func stableKey[K comparable](env *Env, k K) uint64 {
	if env.transport != nil {
		return StableHash(k)
	}
	return hashComparable(k)
}
