package dataflow

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSkewEdgeCases: Skew must degrade to the neutral 1.0 instead of
// dividing by zero on empty or zero-work snapshots.
func TestSkewEdgeCases(t *testing.T) {
	if s := (MetricsSnapshot{}).Skew(); s != 1 {
		t.Errorf("zero-value snapshot skew = %v, want 1", s)
	}
	if s := (MetricsSnapshot{Workers: 4}).Skew(); s != 1 {
		t.Errorf("zero-CPU snapshot skew = %v, want 1", s)
	}
	if s := (MetricsSnapshot{TotalCPU: 100, MaxWorkerCPU: 100}).Skew(); s != 1 {
		t.Errorf("zero-workers snapshot skew = %v, want 1", s)
	}
	perfect := MetricsSnapshot{Workers: 4, TotalCPU: 400, MaxWorkerCPU: 100}
	if s := perfect.Skew(); s != 1 {
		t.Errorf("balanced skew = %v, want 1", s)
	}
	skewed := MetricsSnapshot{Workers: 4, TotalCPU: 400, MaxWorkerCPU: 400}
	if s := skewed.Skew(); s != 4 {
		t.Errorf("one-hot skew = %v, want 4", s)
	}
}

// TestSnapshotString: the summary line must include the retry block exactly
// when retries happened.
func TestSnapshotString(t *testing.T) {
	clean := MetricsSnapshot{Workers: 2, Stages: 3}
	if s := clean.String(); strings.Contains(s, "retries=") {
		t.Errorf("clean snapshot mentions retries: %q", s)
	}
	retried := MetricsSnapshot{
		Workers: 2, Stages: 3,
		Retries: 2, RetriedStages: 1, RecoveryTime: 3 * time.Millisecond,
	}
	s := retried.String()
	for _, want := range []string{"retries=2", "retriedStages=1", "recovery=3ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("retried snapshot %q missing %q", s, want)
		}
	}
	if !strings.Contains(s, "workers=2") || !strings.Contains(s, "skew=1.00") {
		t.Errorf("summary %q missing base fields", s)
	}
}

// TestMetricsConcurrentCounters: the lock-free per-worker counters must
// accumulate correctly under concurrent hammering from all workers (run
// with -race this also proves the atomics replaced the mutex soundly).
func TestMetricsConcurrentCounters(t *testing.T) {
	var m Metrics
	const workers, rounds = 8, 1000
	m.init(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.addCPU(w, 1)
				m.addNet(w, 2)
				m.addSpill(w, 3)
			}
			m.addRecovery(w, int64(w%2)+1, time.Microsecond)
		}(w)
	}
	wg.Wait()
	s := m.snapshot(DefaultConfig(workers))
	if s.TotalCPU != workers*rounds || s.TotalNet != 2*workers*rounds || s.TotalSpill != 3*workers*rounds {
		t.Errorf("totals = %d/%d/%d, want %d/%d/%d",
			s.TotalCPU, s.TotalNet, s.TotalSpill, workers*rounds, 2*workers*rounds, 3*workers*rounds)
	}
	if s.Retries != workers {
		t.Errorf("retries = %d, want %d", s.Retries, workers)
	}
	if s.RetriedStages != 2 {
		t.Errorf("retried stages = %d, want 2", s.RetriedStages)
	}
	if s.RecoveryTime != time.Duration(workers)*time.Microsecond {
		t.Errorf("recovery = %v, want %v", s.RecoveryTime, time.Duration(workers)*time.Microsecond)
	}
}

// TestAddStageNumbers: stage numbers are 1-based and sequential, and
// shuffles are counted separately.
func TestAddStageNumbers(t *testing.T) {
	var m Metrics
	m.init(2)
	if n := m.addStage(false); n != 1 {
		t.Errorf("first stage = %d, want 1", n)
	}
	if n := m.addStage(true); n != 2 {
		t.Errorf("second stage = %d, want 2", n)
	}
	s := m.snapshot(DefaultConfig(2))
	if s.Stages != 2 || s.Shuffles != 1 {
		t.Errorf("stages/shuffles = %d/%d, want 2/1", s.Stages, s.Shuffles)
	}
}
