package dataflow

// JoinHint selects the physical join strategy, mirroring the choice Flink's
// optimizer makes between repartitioning both inputs and broadcasting the
// smaller one.
type JoinHint int

const (
	// RepartitionHash shuffles both inputs by key hash and runs a
	// per-partition hash join (build = left, probe = right).
	RepartitionHash JoinHint = iota
	// BroadcastLeft replicates the left input to every worker and probes it
	// with the unmoved right input.
	BroadcastLeft
)

// Join performs an equi-join of l and r on uint64 keys. The joiner is a
// FlatJoin: it may emit zero or more outputs per matching pair, which is how
// JoinEmbeddings discards pairs that violate isomorphism semantics without a
// separate filter stage (§3.1).
func Join[L, R, U any](l *Dataset[L], r *Dataset[R], lkey func(L) uint64, rkey func(R) uint64,
	joiner func(L, R, func(U)), hint JoinHint) *Dataset[U] {
	return JoinTagged(l, r, lkey, rkey, joiner, hint, 0)
}

// JoinTagged is Join with partition reuse: tag identifies the logical join
// key. Inputs already partitioned under tag skip their shuffle, and the
// result is marked as partitioned under tag (a repartition hash join leaves
// output rows on the partition their key hashes to).
func JoinTagged[L, R, U any](l *Dataset[L], r *Dataset[R], lkey func(L) uint64, rkey func(R) uint64,
	joiner func(L, R, func(U)), hint JoinHint, tag uint64) *Dataset[U] {
	if mismatch(l.env, r.env, "Join") || l.env.Failed() {
		return Empty[U](l.env)
	}
	switch hint {
	case BroadcastLeft:
		return broadcastJoin(l, r, lkey, rkey, joiner)
	default:
		return repartitionJoin(l, r, lkey, rkey, joiner, tag)
	}
}

func repartitionJoin[L, R, U any](l *Dataset[L], r *Dataset[R], lkey func(L) uint64, rkey func(R) uint64,
	joiner func(L, R, func(U)), tag uint64) *Dataset[U] {
	env := l.env
	ls := shuffleTagged(l, lkey, tag)
	rs := shuffleTagged(r, rkey, tag)
	env.beginStage("Join", false)
	w := len(ls.parts)
	out := make([][]U, w)
	env.runParts(w, func(p int) {
		res := hashJoinPartition(env, p, ls.parts[p], rs.parts[p], lkey, rkey, joiner)
		env.traceRowsIn(p, int64(len(ls.parts[p])+len(rs.parts[p])))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
	return &Dataset[U]{env: env, parts: out, partTag: tag}
}

func broadcastJoin[L, R, U any](l *Dataset[L], r *Dataset[R], lkey func(L) uint64, rkey func(R) uint64,
	joiner func(L, R, func(U))) *Dataset[U] {
	env := l.env
	build := broadcast(l)
	env.beginStage("Join", false)
	w := len(r.parts)
	out := make([][]U, w)
	env.runParts(w, func(p int) {
		// A non-owned partition's probe side is empty by construction, but the
		// build side is the full broadcast slice — constructing its hash table
		// would be pure waste and would double-charge CPU and memory that the
		// owning process already accounts for.
		if env.transport != nil && !env.transport.Owns(p) {
			return
		}
		res := hashJoinPartition(env, p, build, r.parts[p], lkey, rkey, joiner)
		env.traceRowsIn(p, int64(len(build)+len(r.parts[p])))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
	return &Dataset[U]{env: env, parts: out}
}

// CoGroup groups both inputs by key and hands each key's complete groups to
// f — Flink's coGroup transformation. Keys appear in deterministic order:
// left-side keys in first-occurrence order, then right-only keys. A left
// key with no right partner receives an empty right group (the building
// block of outer joins, e.g. OPTIONAL MATCH).
func CoGroup[L, R, U any](l *Dataset[L], r *Dataset[R], lkey func(L) uint64, rkey func(R) uint64,
	f func(key uint64, ls []L, rs []R, emit func(U))) *Dataset[U] {
	env := l.env
	if mismatch(l.env, r.env, "CoGroup") || env.Failed() {
		return Empty[U](env)
	}
	ls := shuffle(l, lkey)
	rs := shuffle(r, rkey)
	env.beginStage("CoGroup", false)
	w := len(ls.parts)
	out := make([][]U, w)
	env.runParts(w, func(p int) {
		var mem int64
		leftGroups := map[uint64][]L{}
		var order []uint64
		for i, lv := range ls.parts[p] {
			if i&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return
				}
				if !env.chargeMem(p, mem) {
					return
				}
				mem = 0
			}
			k := lkey(lv)
			if _, ok := leftGroups[k]; !ok {
				order = append(order, k)
			}
			leftGroups[k] = append(leftGroups[k], lv)
			if env.governor != nil {
				mem += sizeOf(lv)
			}
		}
		rightGroups := map[uint64][]R{}
		var rightOnly []uint64
		for i, rv := range rs.parts[p] {
			if i&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return
				}
				if !env.chargeMem(p, mem) {
					return
				}
				mem = 0
			}
			k := rkey(rv)
			if _, inLeft := leftGroups[k]; !inLeft {
				if _, ok := rightGroups[k]; !ok {
					rightOnly = append(rightOnly, k)
				}
			}
			rightGroups[k] = append(rightGroups[k], rv)
			if env.governor != nil {
				mem += sizeOf(rv)
			}
		}
		var res []U
		emit := func(u U) { res = append(res, u) }
		if env.governor != nil {
			emit = func(u U) { res = append(res, u); mem += sizeOf(u) }
		}
		for i, k := range order {
			if i&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return
				}
				if !env.chargeMem(p, mem) {
					return
				}
				mem = 0
			}
			f(k, leftGroups[k], rightGroups[k], emit)
		}
		for i, k := range rightOnly {
			if i&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return
				}
				if !env.chargeMem(p, mem) {
					return
				}
				mem = 0
			}
			f(k, nil, rightGroups[k], emit)
		}
		if !env.chargeMem(p, mem) {
			return
		}
		env.chargeCPU(p, int64(len(ls.parts[p])+len(rs.parts[p])))
		env.traceRowsIn(p, int64(len(ls.parts[p])+len(rs.parts[p])))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
	return &Dataset[U]{env: env, parts: out}
}

// hashJoinPartition builds a hash table over the left side and probes it
// with the right side. If the build side exceeds the worker's simulated
// memory budget, the excess — and a proportional share of the probe side —
// is charged as spill, modelling a grace hash join's partition files.
func hashJoinPartition[L, R, U any](env *Env, p int, left []L, right []R,
	lkey func(L) uint64, rkey func(R) uint64, joiner func(L, R, func(U))) []U {
	table := make(map[uint64][]L, len(left))
	var buildBytes, buildCharged int64
	for i, lv := range left {
		if i&cancelCheckMask == cancelCheckMask {
			if env.aborted() {
				return nil
			}
			// The build table is real materialized memory: charge it as it
			// grows so an oversized build side dies before it is complete.
			if !env.chargeMem(p, buildBytes-buildCharged) {
				return nil
			}
			buildCharged = buildBytes
		}
		k := lkey(lv)
		table[k] = append(table[k], lv)
		buildBytes += sizeOf(lv)
	}
	if !env.chargeMem(p, buildBytes-buildCharged) {
		return nil
	}
	if mem := env.cfg.MemoryPerWorker; mem > 0 && buildBytes > mem {
		// Grace hash join: the overflow fraction of both sides goes to disk
		// once on write and once on read.
		overflow := float64(buildBytes-mem) / float64(buildBytes)
		var probeBytes int64
		for _, rv := range right {
			probeBytes += sizeOf(rv)
		}
		spilled := int64(overflow*float64(buildBytes)) + int64(overflow*float64(probeBytes))
		env.chargeSpill(p, 2*spilled)
	}
	var res []U
	var mem int64
	emit := func(u U) { res = append(res, u) }
	if env.governor != nil {
		emit = func(u U) { res = append(res, u); mem += sizeOf(u) }
	}
	// ops counts probes plus emitted pairs so that both many-small-buckets
	// and few-huge-buckets probe patterns poll for cancellation promptly.
	// The memory flush shares the cadence: a cartesian blowup's output is
	// charged — and killed — every mask+1 emitted pairs.
	var ops int
	for _, rv := range right {
		if ops&cancelCheckMask == cancelCheckMask {
			if env.aborted() {
				return res
			}
			if !env.chargeMem(p, mem) {
				return nil
			}
			mem = 0
		}
		ops++
		for _, lv := range table[rkey(rv)] {
			if ops&cancelCheckMask == cancelCheckMask {
				if env.aborted() {
					return res
				}
				if !env.chargeMem(p, mem) {
					return nil
				}
				mem = 0
			}
			ops++
			joiner(lv, rv, emit)
		}
	}
	if !env.chargeMem(p, mem) {
		return nil
	}
	env.chargeCPU(p, int64(len(left)+len(right)))
	return res
}
