// Package dataflow implements a partitioned, shared-nothing dataflow engine
// in the style of Apache Flink's DataSet API. It is the execution substrate
// for the Cypher query engine: datasets are split into P partitions, every
// transformation runs one goroutine per partition, and data moves between
// partitions only through explicit hash shuffles or broadcasts.
//
// Because the original system ran on a 16-node cluster, the engine meters
// the cost drivers of distributed execution — per-worker CPU work, bytes
// crossing partition boundaries, and disk spill under memory pressure — and
// derives a deterministic simulated cluster runtime from them (see Metrics).
// Real wall-clock time on the local machine is available to callers as well;
// the simulated time is what reproduces the paper's scalability figures.
//
// Like its model, the engine has a failure story (Flink restarts tasks and
// re-reads their inputs; the GRADOOP report leans on exactly that for
// production viability): partition goroutines recover panics into a
// structured JobError, jobs can be cancelled through a context, and a
// deterministic FaultPlan can kill workers mid-job to exercise the
// lineage-based recovery path. Once an Env has failed, every subsequent
// transformation short-circuits to an empty dataset and the error surfaces
// from Env.Err (and from core.Execute as a real error).
package dataflow

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gradoop/internal/govern"
	"gradoop/internal/trace"
)

// Config describes a simulated cluster: how many workers execute a job and
// the cost coefficients of the simulated-time model. The zero value is not
// usable; call DefaultConfig or fill in all fields.
type Config struct {
	// Workers is the number of parallel workers (= dataset partitions).
	Workers int

	// MemoryPerWorker is the simulated memory budget, in bytes, available
	// to a single worker for join build sides. Build sides larger than the
	// budget spill the excess to simulated disk, exactly the effect that
	// produces the paper's super-linear speedups when more workers bring
	// more aggregate memory.
	MemoryPerWorker int64

	// CPUTimePerElement is the simulated cost of processing one element in
	// any transformation.
	CPUTimePerElement time.Duration

	// NetTimePerByte is the simulated cost of moving one byte between two
	// different workers during a shuffle or broadcast.
	NetTimePerByte time.Duration

	// DiskTimePerByte is the simulated cost of writing and re-reading one
	// spilled byte.
	DiskTimePerByte time.Duration

	// StageOverhead is a fixed simulated coordination cost charged once per
	// transformation (job stage), independent of the worker count. It models
	// scheduling/deployment latency and bounds speedup on tiny inputs.
	StageOverhead time.Duration

	// FaultPlan injects deterministic worker failures; nil disables
	// injection. Kill consumption is tracked per job and re-armed by
	// ResetMetrics / Begin, so kill stage numbers refer to the stages of
	// the job executed after the last reset. See also Env.InjectFaults.
	FaultPlan *FaultPlan

	// DebugDefensiveCopy makes FromSlice copy its input slice instead of
	// aliasing it, guarding against callers that mutate the slice after
	// dataset construction (a documented contract violation that is
	// otherwise silent). Intended for tests and debugging; the copy costs
	// real time and memory on large inputs.
	DebugDefensiveCopy bool
}

// DefaultConfig returns a configuration resembling the paper's setup scaled
// to a single machine: the coefficients are chosen so that the shapes of the
// evaluation figures (speedup curves, crossovers) match the paper's, not the
// absolute seconds.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:           workers,
		MemoryPerWorker:   4 << 20, // 4 MiB of simulated join memory per worker
		CPUTimePerElement: 5 * time.Microsecond,
		NetTimePerByte:    40 * time.Nanosecond,
		DiskTimePerByte:   120 * time.Nanosecond,
		StageOverhead:     200 * time.Microsecond,
	}
}

// cancelCheckMask controls how often per-element partition loops poll for
// cancellation: every (mask+1) elements. 256 elements keep the overhead of
// the atomic load negligible while bounding the reaction latency to well
// under 100ms even for expensive UDFs.
const cancelCheckMask = 255

// Env is an execution environment: a simulated cluster plus the metrics
// accumulated by every dataset transformation executed against it. An Env is
// safe for use by the goroutines the engine itself spawns; callers should
// treat it as owned by one job at a time. Begin, Finish, InjectFaults and
// ResetMetrics must only be called between jobs (no transformation in
// flight).
type Env struct {
	cfg     Config
	metrics Metrics

	// tracer records per-stage execution spans; nil disables tracing (the
	// default, and the zero-cost path: every hook is a nil check). Written
	// only between jobs (SetTracer), like ctx.
	tracer *trace.Collector

	// observer publishes continuous telemetry (stage-time histograms,
	// shuffle/spill bytes, retries) into a process-wide obs.Registry; nil
	// disables it at the same nil-check cost as a nil tracer. obsKind and
	// obsStart carry the open stage's wall-clock timing; stage boundaries
	// run serially on the job's driving goroutine, so they need no lock.
	observer *Observer
	obsKind  string
	obsStart time.Time
	// curKind publishes the executing stage's interned kind string for
	// CurrentStage (live /jobs introspection); nil when no stage is open or
	// no observer is installed.
	curKind atomic.Pointer[string]

	// governor is the job's memory reservation against the process-wide
	// govern.Broker; nil disables real memory accounting at the same
	// nil-check cost as a nil tracer. Written only between jobs
	// (SetGovernor). memKilled latches the job's first budget kill so
	// MemKills counts killed jobs, not killed partitions.
	governor  *govern.Reservation
	memKilled atomic.Bool

	// transport connects this process's partitions to the rest of a
	// multi-process job; nil (the default) keeps every exchange in-process
	// at the same nil-check cost as a nil tracer. Written only between jobs
	// (SetTransport).
	transport Transport

	// ctx/done carry the current job's cancellation signal; nil when the
	// job is not cancellable. Written only between jobs (Begin/Finish).
	ctx  context.Context
	done <-chan struct{}

	// failed is the fast-path flag partition loops poll; the first error
	// is kept under mu. killsUsed tracks fault-plan consumption per job.
	failed    atomic.Bool
	mu        sync.Mutex
	err       error
	killsUsed map[killKey]int
}

type killKey struct {
	stage     int64
	partition int
}

// NewEnv creates an execution environment for the given cluster config.
// Workers is clamped to at least 1.
func NewEnv(cfg Config) *Env {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	e := &Env{cfg: cfg}
	e.metrics.init(cfg.Workers)
	return e
}

// NewEnvContext creates an execution environment whose jobs are cancelled
// when ctx is done. It is equivalent to NewEnv followed by Begin(ctx).
func NewEnvContext(ctx context.Context, cfg Config) *Env {
	e := NewEnv(cfg)
	e.Begin(ctx)
	return e
}

// Config returns the environment's cluster configuration.
func (e *Env) Config() Config { return e.cfg }

// Workers returns the configured worker (= partition) count.
func (e *Env) Workers() int { return e.cfg.Workers }

// Metrics returns a snapshot of the metrics accumulated so far.
func (e *Env) Metrics() MetricsSnapshot { return e.metrics.snapshot(e.cfg) }

// ResetMetrics clears all accumulated metrics, e.g. between the load phase
// and the query phase of a benchmark. It also re-arms the fault plan: kill
// stage numbers refer to the stages executed after the reset.
func (e *Env) ResetMetrics() {
	e.metrics.init(e.cfg.Workers)
	e.mu.Lock()
	e.killsUsed = nil
	e.mu.Unlock()
}

// Begin starts a new job on the environment: it installs ctx as the job's
// cancellation signal (nil means not cancellable), clears any failure left
// by a previous job and re-arms the fault plan. Metrics are not touched.
func (e *Env) Begin(ctx context.Context) {
	e.mu.Lock()
	e.err = nil
	e.killsUsed = nil
	e.mu.Unlock()
	e.failed.Store(false)
	e.obsKind = ""
	if ctx == nil {
		e.ctx, e.done = nil, nil
		return
	}
	e.ctx, e.done = ctx, ctx.Done()
}

// Finish ends the current job: it detaches the cancellation context,
// closes the tracer's open span, closes the observer's open stage timing
// and returns the job's error, if any. A failed environment stays failed —
// further transformations keep short-circuiting — until the next Begin.
func (e *Env) Finish() error {
	e.ctx, e.done = nil, nil
	if e.tracer != nil {
		e.tracer.Finish()
	}
	e.obsFinish()
	return e.Err()
}

// SetTracer installs (or, with nil, removes) the execution-trace collector.
// Must only be called between jobs. With no collector the engine's tracing
// hooks reduce to a nil check, so disabled tracing is free.
func (e *Env) SetTracer(c *trace.Collector) { e.tracer = c }

// SetGovernor installs (or, with nil, removes) the job's memory reservation.
// Must only be called between jobs. With a governor every materialization
// point charges its actual output bytes through govern.Reservation.Reserve
// and aborts the job — exactly like a contained panic — when the process
// budget kills it; without one (the default) the hooks reduce to a nil
// check. The environment does not release the reservation: its owner (the
// session) holds it for the query's lifetime and releases on completion.
func (e *Env) SetGovernor(r *govern.Reservation) {
	e.governor = r
	e.memKilled.Store(false)
}

// Governor returns the installed memory reservation, or nil.
func (e *Env) Governor() *govern.Reservation { return e.governor }

// Tracer returns the installed trace collector, or nil.
func (e *Env) Tracer() *trace.Collector { return e.tracer }

// MarkIteration tags subsequently traced stages with a 1-based bulk
// iteration superstep number (0 clears the tag). A no-op without a tracer.
func (e *Env) MarkIteration(it int) {
	if e.tracer != nil {
		e.tracer.SetIteration(it)
	}
}

// beginStage counts a new stage in the metrics and, when tracing, opens its
// span. Every transformation calls it exactly once, immediately before its
// partitioned run.
func (e *Env) beginStage(kind string, shuffle bool) {
	stage := e.metrics.addStage(shuffle)
	if e.tracer != nil {
		e.tracer.BeginStage(stage, kind, shuffle, e.cfg.Workers)
	}
	e.obsStageBoundary(kind)
}

// chargeCPU accounts elements processed by a worker, mirroring the charge
// into the active trace span.
func (e *Env) chargeCPU(worker int, elements int64) {
	e.metrics.addCPU(worker, elements)
	if e.tracer != nil {
		e.tracer.CPU(worker, elements)
	}
}

// chargeNet accounts bytes received by a worker over the simulated network.
func (e *Env) chargeNet(worker int, bytes int64) {
	e.metrics.addNet(worker, bytes)
	if e.tracer != nil {
		e.tracer.Net(worker, bytes)
	}
	if e.observer != nil {
		e.observer.shuffleBytes.Add(bytes)
	}
}

// chargeSpill accounts bytes spilled to simulated disk by a worker.
func (e *Env) chargeSpill(worker int, bytes int64) {
	e.metrics.addSpill(worker, bytes)
	if e.tracer != nil {
		e.tracer.Spill(worker, bytes)
	}
	if e.observer != nil {
		e.observer.spillBytes.Add(bytes)
	}
}

// chargeMem charges n freshly materialized bytes to the job's memory
// reservation and mirrors them into the metrics. It returns false when the
// governor kills the job — the structured budget error (wrapped in a
// JobError so it unwinds like any contained partition failure) is recorded
// and the short-circuit flag raised, so callers return immediately and
// sibling partitions stop at their next poll. With n == 0 it is a pure
// cooperative kill check: a reservation killed by another query's shedding
// still fails it. Without a governor it is a nil check.
func (e *Env) chargeMem(worker int, n int64) bool {
	if e.governor == nil {
		return true
	}
	if err := e.governor.Reserve(n); err != nil {
		if e.memKilled.CompareAndSwap(false, true) {
			e.metrics.memKills.Add(1)
		}
		e.fail(&JobError{Stage: e.metrics.stageCount(), Partition: worker, Cause: err})
		return false
	}
	if n > 0 {
		e.metrics.addMem(worker, n)
		if e.tracer != nil {
			e.tracer.Mem(worker, n)
		}
	}
	return true
}

// traceRowsIn records a partition's input row count for the active span.
func (e *Env) traceRowsIn(worker int, rows int64) {
	if e.tracer != nil {
		e.tracer.RowsIn(worker, rows)
	}
}

// traceRowsOut records a partition's output row count for the active span.
func (e *Env) traceRowsOut(worker int, rows int64) {
	if e.tracer != nil {
		e.tracer.RowsOut(worker, rows)
	}
}

// Err returns the first error recorded for the current job (a *JobError for
// contained panics and exhausted retries, a context error for
// cancellations, ErrEnvMismatch for mixed-environment operands), or nil.
func (e *Env) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Failed reports whether the current job has failed; transformations on a
// failed environment short-circuit to empty datasets.
func (e *Env) Failed() bool { return e.failed.Load() }

// InjectFaults replaces the environment's fault plan and re-arms kill
// consumption. It exists so benchmarks can load data fault-free and then
// arm injection for the measured query. Must be called between jobs.
func (e *Env) InjectFaults(p *FaultPlan) {
	e.cfg.FaultPlan = p
	e.mu.Lock()
	e.killsUsed = nil
	e.mu.Unlock()
}

// fail records err as the job's failure (first error wins) and raises the
// short-circuit flag.
func (e *Env) fail(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.failed.Store(true)
}

// aborted reports whether the current job should stop: either it already
// failed, or its context was cancelled (in which case the context error is
// recorded as the job failure). Partition loops poll it between batches of
// elements; runParts polls it at every stage boundary.
func (e *Env) aborted() bool {
	if e.failed.Load() {
		return true
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.fail(e.ctx.Err())
			return true
		default:
		}
	}
	return false
}

// consumeKill reports whether the fault plan kills the given attempt of
// (stage, partition), consuming one unit of the kill budget if so.
func (e *Env) consumeKill(stage int64, partition int) bool {
	budget := e.cfg.FaultPlan.killBudget(stage, partition)
	if budget == 0 {
		return false
	}
	key := killKey{stage: stage, partition: partition}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.killsUsed[key] >= budget {
		return false
	}
	if e.killsUsed == nil {
		e.killsUsed = map[killKey]int{}
	}
	e.killsUsed[key]++
	return true
}

// runParts executes f(p) for every partition index in [0, n) concurrently
// and waits for all of them. It is the engine's only parallelism primitive
// and its fault boundary: panics inside f are recovered into a JobError,
// injected worker failures are retried by re-executing the partition from
// its materialized input (lineage-based restart), and a job that has
// already failed is not started at all.
func (e *Env) runParts(n int, f func(p int)) {
	if e.aborted() {
		return
	}
	stage := e.metrics.stageCount()
	var wg sync.WaitGroup
	wg.Add(n)
	for p := 0; p < n; p++ {
		go func(p int) {
			defer wg.Done()
			e.runPartition(stage, p, f)
		}(p)
	}
	wg.Wait()
}

// runPartition drives the retry loop of one partition's stage execution.
// Injected worker failures are recovered with bounded retries and simulated
// backoff; genuine panics and exhausted budgets fail the job.
func (e *Env) runPartition(stage int64, p int, f func(int)) {
	plan := e.cfg.FaultPlan
	for attempt := 0; ; attempt++ {
		var started time.Time
		if e.tracer != nil {
			started = time.Now()
		}
		err := e.runAttempt(stage, p, f)
		if e.tracer != nil {
			e.tracer.Attempt(stage, p, attempt, started, time.Now(), err != nil)
		}
		if err == nil {
			return
		}
		if _, injected := err.(*workerFailure); injected {
			if attempt < plan.maxRetries() {
				// Lineage-based recovery: charge the simulated redeployment
				// (backoff + stage overhead) and loop to re-execute the
				// partition; the recomputed work re-charges its own CPU.
				recovery := plan.backoff(attempt) + e.cfg.StageOverhead
				e.metrics.addRecovery(p, stage, recovery)
				if e.tracer != nil {
					e.tracer.Retry(stage, p, recovery)
				}
				if e.observer != nil {
					e.observer.retries.Inc()
				}
				continue
			}
			err = &JobError{
				Stage:     stage,
				Partition: p,
				Cause: fmt.Errorf("worker failed %d times, retry budget (%d) exhausted: %w",
					attempt+1, plan.maxRetries(), err),
			}
		}
		e.fail(err)
		return
	}
}

// runAttempt executes one attempt of f(p) with panic containment. It
// returns a *workerFailure for injected (retryable) failures, a *JobError
// for recovered panics, and nil on success or when the job is already
// aborted (the abort reason is recorded elsewhere).
func (e *Env) runAttempt(stage int64, p int, f func(int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if wf, ok := r.(*workerFailure); ok {
				err = wf
				return
			}
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			err = &JobError{Stage: stage, Partition: p, Cause: cause, Stack: debug.Stack()}
		}
	}()
	if e.aborted() {
		return nil
	}
	f(p)
	// The injected kill fires after the partition's work: the worker dies
	// before the stage commits, so recovery must redo the work — the
	// re-execution cost shows up in the metrics, as on a real cluster.
	if e.cfg.FaultPlan != nil && e.consumeKill(stage, p) {
		panic(&workerFailure{stage: stage, partition: p})
	}
	return nil
}
