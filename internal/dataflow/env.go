// Package dataflow implements a partitioned, shared-nothing dataflow engine
// in the style of Apache Flink's DataSet API. It is the execution substrate
// for the Cypher query engine: datasets are split into P partitions, every
// transformation runs one goroutine per partition, and data moves between
// partitions only through explicit hash shuffles or broadcasts.
//
// Because the original system ran on a 16-node cluster, the engine meters
// the cost drivers of distributed execution — per-worker CPU work, bytes
// crossing partition boundaries, and disk spill under memory pressure — and
// derives a deterministic simulated cluster runtime from them (see Metrics).
// Real wall-clock time on the local machine is available to callers as well;
// the simulated time is what reproduces the paper's scalability figures.
package dataflow

import "time"

// Config describes a simulated cluster: how many workers execute a job and
// the cost coefficients of the simulated-time model. The zero value is not
// usable; call DefaultConfig or fill in all fields.
type Config struct {
	// Workers is the number of parallel workers (= dataset partitions).
	Workers int

	// MemoryPerWorker is the simulated memory budget, in bytes, available
	// to a single worker for join build sides. Build sides larger than the
	// budget spill the excess to simulated disk, exactly the effect that
	// produces the paper's super-linear speedups when more workers bring
	// more aggregate memory.
	MemoryPerWorker int64

	// CPUTimePerElement is the simulated cost of processing one element in
	// any transformation.
	CPUTimePerElement time.Duration

	// NetTimePerByte is the simulated cost of moving one byte between two
	// different workers during a shuffle or broadcast.
	NetTimePerByte time.Duration

	// DiskTimePerByte is the simulated cost of writing and re-reading one
	// spilled byte.
	DiskTimePerByte time.Duration

	// StageOverhead is a fixed simulated coordination cost charged once per
	// transformation (job stage), independent of the worker count. It models
	// scheduling/deployment latency and bounds speedup on tiny inputs.
	StageOverhead time.Duration
}

// DefaultConfig returns a configuration resembling the paper's setup scaled
// to a single machine: the coefficients are chosen so that the shapes of the
// evaluation figures (speedup curves, crossovers) match the paper's, not the
// absolute seconds.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:           workers,
		MemoryPerWorker:   4 << 20, // 4 MiB of simulated join memory per worker
		CPUTimePerElement: 5 * time.Microsecond,
		NetTimePerByte:    40 * time.Nanosecond,
		DiskTimePerByte:   120 * time.Nanosecond,
		StageOverhead:     200 * time.Microsecond,
	}
}

// Env is an execution environment: a simulated cluster plus the metrics
// accumulated by every dataset transformation executed against it. An Env is
// safe for use by the goroutines the engine itself spawns; callers should
// treat it as owned by one job at a time.
type Env struct {
	cfg     Config
	metrics Metrics
}

// NewEnv creates an execution environment for the given cluster config.
// Workers is clamped to at least 1.
func NewEnv(cfg Config) *Env {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	e := &Env{cfg: cfg}
	e.metrics.init(cfg.Workers)
	return e
}

// Config returns the environment's cluster configuration.
func (e *Env) Config() Config { return e.cfg }

// Workers returns the configured worker (= partition) count.
func (e *Env) Workers() int { return e.cfg.Workers }

// Metrics returns a snapshot of the metrics accumulated so far.
func (e *Env) Metrics() MetricsSnapshot { return e.metrics.snapshot(e.cfg) }

// ResetMetrics clears all accumulated metrics, e.g. between the load phase
// and the query phase of a benchmark.
func (e *Env) ResetMetrics() { e.metrics.init(e.cfg.Workers) }

// runParts executes f(p) for every partition index in [0, n) concurrently
// and waits for all of them. It is the engine's only parallelism primitive.
func (e *Env) runParts(n int, f func(p int)) {
	done := make(chan struct{}, n)
	for p := 0; p < n; p++ {
		go func(p int) {
			defer func() { done <- struct{}{} }()
			f(p)
		}(p)
	}
	for p := 0; p < n; p++ {
		<-done
	}
}
