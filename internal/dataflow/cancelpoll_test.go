package dataflow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestGroupingOpsPollCancellation is the regression test for the ctxpoll
// findings: the per-partition loops of DistinctBy, ReduceByKey, GroupBy and
// CoGroup must poll cancellation, so a context cancelled mid-loop stops the
// work within the cancelCheckMask window instead of finishing the pass.
//
// The test runs on a single worker deliberately: the one-partition shuffle
// fast path performs no key calls and there is exactly one partition
// goroutine, so the first key call of every grouping loop lands after
// runParts' entry abort check — the only thing that can stop the loop
// afterwards is the loop's own poll. (With several workers, partitions that
// happen to start after the cancel are stopped by the entry check and mask
// a missing in-loop poll.) Each case counts user key-function invocations,
// cancels the context 10k calls in, and asserts the loop stopped within the
// polling window rather than finishing the full pass.
func TestGroupingOpsPollCancellation(t *testing.T) {
	const n = 100_000
	const trigger = 10_000
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}

	cases := []struct {
		name string
		// maxCalls is the ceiling the polled implementation must stay under;
		// an unpolled loop runs the full pass (n calls, 2n for CoGroup's two
		// build loops) and exceeds it.
		maxCalls int64
		run      func(d *Dataset[int], key func(int) int)
	}{
		{
			name: "DistinctBy", maxCalls: 60_000,
			run: func(d *Dataset[int], key func(int) int) {
				DistinctBy(d, key)
			},
		},
		{
			name: "ReduceByKey", maxCalls: 60_000,
			run: func(d *Dataset[int], key func(int) int) {
				ReduceByKey(d, key, func(a, b int) int { return a + b })
			},
		},
		{
			name: "GroupBy", maxCalls: 60_000,
			run: func(d *Dataset[int], key func(int) int) {
				GroupBy(d, key, func(k int, group []int, emit func(int)) { emit(len(group)) })
			},
		},
		{
			name: "CoGroup", maxCalls: 60_000,
			run: func(d *Dataset[int], key func(int) int) {
				k := func(v int) uint64 { return uint64(key(v)) }
				CoGroup(d, d, k, k, func(_ uint64, ls, rs []int, emit func(int)) {
					emit(len(ls) + len(rs))
				})
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			env := NewEnvContext(ctx, DefaultConfig(1))
			d := FromSlice(env, data)
			var calls atomic.Int64
			key := func(v int) int {
				if calls.Add(1) == trigger {
					cancel()
				}
				return v % 64
			}
			tc.run(d, key)
			if err := env.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancellation never observed by the op's loops: env.Err() = %v", err)
			}
			if got := calls.Load(); got > tc.maxCalls {
				t.Fatalf("op kept working after cancellation: %d key calls, want <= %d", got, tc.maxCalls)
			}
		})
	}
}
