package dataflow

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// --- stable hash -----------------------------------------------------------

// TestStableHashGoldens pins StableHash values so a change to the hash
// pipeline cannot slip in silently: every process of a distributed job must
// compute these exact values or cross-process shuffles route the same key to
// different workers and groups split.
func TestStableHashGoldens(t *testing.T) {
	if got, want := StableHash("Person"), uint64(0x2f48fc53f6a675ac); got != want {
		t.Errorf("StableHash(\"Person\") = %#x, want %#x", got, want)
	}
	if got, want := StableHash(uint64(42)), uint64(0xa759ea27d4727622); got != want {
		t.Errorf("StableHash(uint64(42)) = %#x, want %#x", got, want)
	}
	if got, want := StableHash(int(-7)), uint64(0xdb9c3218f1acf6f3); got != want {
		t.Errorf("StableHash(int(-7)) = %#x, want %#x", got, want)
	}
	if got, want := StableHash(1.5), uint64(0xe72b41d4576e3468); got != want {
		t.Errorf("StableHash(1.5) = %#x, want %#x", got, want)
	}
	if got, want := StableHash(true), uint64(0x5692161d100b05e5); got != want {
		t.Errorf("StableHash(true) = %#x, want %#x", got, want)
	}
	if got, want := StableHash(""), uint64(0xf52a15e9a9b5e89b); got != want {
		t.Errorf("StableHash(\"\") = %#x, want %#x", got, want)
	}
}

// TestStableHashNamedTypes checks that named types hash identically to their
// underlying representation — epgm.ID keys must land on the same partition
// as the raw uint64 they wrap.
func TestStableHashNamedTypes(t *testing.T) {
	type myID uint64
	type myStr string
	type myF32 float32
	if got, want := StableHash(myID(42)), StableHash(uint64(42)); got != want {
		t.Errorf("named uint64 hashes %#x, underlying %#x", got, want)
	}
	if got, want := StableHash(myStr("Person")), StableHash("Person"); got != want {
		t.Errorf("named string hashes %#x, underlying %#x", got, want)
	}
	if got, want := StableHash(myF32(2.5)), StableHash(float32(2.5)); got != want {
		t.Errorf("named float32 hashes %#x, underlying %#x", got, want)
	}
	if StableHash(int64(-1)) != StableHash(int(-1)) {
		t.Errorf("int and int64 of the same value must agree")
	}
}

// TestStableHashStructFallback checks that the canonical-rendering fallback
// is deterministic and type-discriminating.
func TestStableHashStructFallback(t *testing.T) {
	type pair struct{ A, B int }
	if StableHash(pair{1, 2}) != StableHash(pair{1, 2}) {
		t.Fatal("struct hash not deterministic")
	}
	if StableHash(pair{1, 2}) == StableHash(pair{2, 1}) {
		t.Fatal("struct hash ignores field values")
	}
}

// --- in-memory multi-process cluster ---------------------------------------

// memCluster links N in-memory "processes" with a reusable rendezvous
// barrier: every collective call deposits its payload, the last arriver
// snapshots the round, and everyone reads the snapshot. It is the test
// double for the real TCP transport — same Transport contract, no sockets.
type memCluster struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
	slots []any
	ready []any
	owner []int // logical partition -> process
}

func newMemCluster(owner []int, nprocs int) *memCluster {
	c := &memCluster{n: nprocs, slots: make([]any, nprocs), owner: owner}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// rendezvous blocks until every process has deposited this round's payload
// and returns all payloads indexed by process.
func (c *memCluster) rendezvous(proc int, v any) []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	c.slots[proc] = v
	c.count++
	if c.count == c.n {
		c.count = 0
		c.gen++
		c.ready = append([]any(nil), c.slots...)
		c.cond.Broadcast()
	} else {
		for gen == c.gen {
			c.cond.Wait()
		}
	}
	return c.ready
}

func (c *memCluster) transport(proc int) *memTransport {
	return &memTransport{c: c, proc: proc}
}

type memTransport struct {
	c    *memCluster
	proc int
}

func (t *memTransport) Owns(p int) bool { return t.c.owner[p] == t.proc }

func (t *memTransport) Exchange(stage int64, outgoing [][][]byte) ([][][]byte, error) {
	all := t.c.rendezvous(t.proc, outgoing)
	w := len(t.c.owner)
	in := make([][][]byte, w)
	for q := 0; q < w; q++ {
		if !t.Owns(q) {
			continue
		}
		in[q] = make([][]byte, w)
		for p := 0; p < w; p++ {
			if t.Owns(p) {
				continue
			}
			src := all[t.c.owner[p]].([][][]byte)
			in[q][p] = src[p][q]
		}
	}
	return in, nil
}

func (t *memTransport) AllGather(stage int64, blobs [][]byte) ([][]byte, error) {
	all := t.c.rendezvous(t.proc, blobs)
	w := len(t.c.owner)
	out := make([][]byte, w)
	for p := 0; p < w; p++ {
		if t.Owns(p) {
			out[p] = blobs[p]
			continue
		}
		out[p] = all[t.c.owner[p]].([][]byte)[p]
	}
	return out, nil
}

// --- pipeline bit-identity --------------------------------------------------

// wrec is the wire-codec'd element the parity pipeline moves around.
type wrec struct {
	K uint64
	V int64
}

func (wrec) SizeBytes() int { return 16 }

func (r wrec) AppendWire(dst []byte) []byte {
	dst = append(dst, byte(r.K>>56), byte(r.K>>48), byte(r.K>>40), byte(r.K>>32),
		byte(r.K>>24), byte(r.K>>16), byte(r.K>>8), byte(r.K))
	v := uint64(r.V)
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (r *wrec) DecodeWireInto(b []byte) ([]byte, error) {
	if len(b) < 16 {
		return nil, errors.New("truncated wrec")
	}
	r.K = uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	r.V = int64(uint64(b[8])<<56 | uint64(b[9])<<48 | uint64(b[10])<<40 | uint64(b[11])<<32 |
		uint64(b[12])<<24 | uint64(b[13])<<16 | uint64(b[14])<<8 | uint64(b[15]))
	return b[16:], nil
}

// clusterPipeline is the parity workload: it crosses every distributed seam
// — a grouping shuffle (ReduceByKey), a repartition join, a broadcast join,
// a rebalance and a data-dependent bulk iteration whose convergence needs
// global agreement.
func clusterPipeline(e *Env, n int) *Dataset[wrec] {
	src := make([]wrec, n)
	for i := range src {
		src[i] = wrec{K: uint64(i % 97), V: int64(i)}
	}
	dims := make([]wrec, 13)
	for i := range dims {
		dims[i] = wrec{K: uint64(i), V: int64(100 + i)}
	}
	d := FromSlice(e, src)
	// DistinctBy shuffles by stableKey — the grouping-shuffle seam whose
	// cross-process hash stability satellite work pinned down.
	summed := DistinctBy(d, func(r wrec) uint64 { return r.K })
	dimsDS := FromSlice(e, dims)
	joined := Join(summed, dimsDS,
		func(r wrec) uint64 { return r.K % 13 }, func(r wrec) uint64 { return r.K },
		func(l, r wrec, emit func(wrec)) {
			if l.K%13 == r.K {
				emit(wrec{K: l.K, V: l.V + r.V})
			}
		}, RepartitionHash)
	bj := Join(dimsDS, joined,
		func(r wrec) uint64 { return r.K }, func(r wrec) uint64 { return r.K % 13 },
		func(l, r wrec, emit func(wrec)) {
			if l.K == r.K%13 {
				emit(wrec{K: r.K, V: r.V - l.V})
			}
		}, BroadcastLeft)
	rb := Rebalance(bj)
	// Iteration count depends on the data (V magnitudes differ per element),
	// so processes only agree on when to stop via the global emptiness check.
	return BulkIteration(rb, 64, func(it int, w *Dataset[wrec]) (*Dataset[wrec], *Dataset[wrec]) {
		done := Filter(w, func(r wrec) bool { return r.V < 1000 })
		next := Map(Filter(w, func(r wrec) bool { return r.V >= 1000 }),
			func(r wrec) wrec { return wrec{K: r.K, V: r.V / 2} })
		return next, done
	})
}

// runClusterPipeline runs the pipeline on nprocs in-memory processes with
// the given partition->process assignment and returns the concatenation of
// owned partitions in partition order, plus each process's metrics.
func runClusterPipeline(t *testing.T, workers, n int, owner []int, nprocs int) ([]wrec, []MetricsSnapshot) {
	t.Helper()
	c := newMemCluster(owner, nprocs)
	results := make([][][]wrec, nprocs)
	metrics := make([]MetricsSnapshot, nprocs)
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for proc := 0; proc < nprocs; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			e := NewEnv(DefaultConfig(workers))
			e.SetTransport(c.transport(proc))
			out := clusterPipeline(e, n)
			results[proc] = out.parts
			metrics[proc] = e.Metrics()
			errs[proc] = e.Err()
		}(proc)
	}
	wg.Wait()
	for proc, err := range errs {
		if err != nil {
			t.Fatalf("process %d failed: %v", proc, err)
		}
	}
	merged := make([]wrec, 0, n)
	for p := 0; p < workers; p++ {
		merged = append(merged, results[owner[p]][p]...)
	}
	return merged, metrics
}

// TestTransportBitIdentity is the recovery guarantee's foundation: any
// ownership assignment — one process owning everything, two processes in
// any partition layout, four processes — produces the byte-identical row
// sequence, because partition contents and concatenation order are fixed by
// the program, not by who owns what. A nil-transport run is additionally
// checked as a multiset: grouping shuffles hash with the process-seeded
// maphash there, so row order (never stable across process restarts in the
// first place) may differ, but the rows themselves must not.
func TestTransportBitIdentity(t *testing.T) {
	const workers, n = 4, 2000
	// Reference: a single in-memory "process" owning every partition.
	want, _ := runClusterPipeline(t, workers, n, []int{0, 0, 0, 0}, 1)
	if len(want) == 0 {
		t.Fatal("reference pipeline produced no rows")
	}
	cases := []struct {
		name   string
		owner  []int
		nprocs int
	}{
		{"2proc-contiguous", []int{0, 0, 1, 1}, 2},
		{"2proc-interleaved", []int{0, 1, 0, 1}, 2},
		{"2proc-skewed", []int{0, 1, 1, 1}, 2},
		{"4proc", []int{0, 1, 2, 3}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, _ := runClusterPipeline(t, workers, n, tc.owner, tc.nprocs)
			if len(got) != len(want) {
				t.Fatalf("got %d rows, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d: got %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
	t.Run("vs-local-multiset", func(t *testing.T) {
		local := clusterPipeline(NewEnv(DefaultConfig(workers)), n).Collect()
		if len(local) != len(want) {
			t.Fatalf("local run has %d rows, distributed %d", len(local), len(want))
		}
		count := make(map[wrec]int, len(local))
		for _, r := range local {
			count[r]++
		}
		for _, r := range want {
			count[r]--
			if count[r] < 0 {
				t.Fatalf("distributed row %+v missing from local result", r)
			}
		}
	})
}

// TestTransportMetricParity checks the cost-model accounting contract: each
// process charges only its owned partitions, so the sum of per-process
// network model bytes equals the single-process total. This is what lets
// the coordinator's merged metrics reproduce a single-process EXPLAIN.
func TestTransportMetricParity(t *testing.T) {
	const workers, n = 4, 2000
	// The reference is a sole process owning all partitions: it runs the
	// same stable-hash partitioning the distributed runs use, so charges
	// must match to the byte.
	_, ref := runClusterPipeline(t, workers, n, []int{0, 0, 0, 0}, 1)
	want := ref[0]

	_, perProc := runClusterPipeline(t, workers, n, []int{0, 1, 0, 1}, 2)
	var gotNet, gotCPU int64
	for _, m := range perProc {
		gotNet += m.TotalNet
		gotCPU += m.TotalCPU
	}
	if gotNet != want.TotalNet {
		t.Errorf("merged network bytes %d, single-process %d", gotNet, want.TotalNet)
	}
	if gotCPU != want.TotalCPU {
		t.Errorf("merged CPU elements %d, single-process %d", gotCPU, want.TotalCPU)
	}
}

// TestTransportUnencodableType checks a remote shuffle over a type without
// wire codecs fails with a structured JobError instead of hanging or
// mis-shuffling.
func TestTransportUnencodableType(t *testing.T) {
	c := newMemCluster([]int{0, 0, 1, 1}, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for proc := 0; proc < 2; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			e := NewEnv(DefaultConfig(4))
			e.SetTransport(c.transport(proc))
			d := FromSlice(e, ints(100))
			Distinct(d)
			errs[proc] = e.Err()
		}(proc)
	}
	wg.Wait()
	for proc, err := range errs {
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("process %d: want JobError, got %v", proc, err)
		}
		if !strings.Contains(err.Error(), "not wire-encodable") {
			t.Fatalf("process %d: unexpected error %v", proc, err)
		}
	}
}

// errTransport fails every collective.
type errTransport struct{ err error }

func (t errTransport) Owns(p int) bool { return p == 0 }
func (t errTransport) Exchange(int64, [][][]byte) ([][][]byte, error) {
	return nil, t.err
}
func (t errTransport) AllGather(int64, [][]byte) ([][]byte, error) {
	return nil, t.err
}

// TestTransportErrorFailsJob checks a transport error surfaces as a
// structured JobError and terminates the pipeline (no hang, empty result).
func TestTransportErrorFailsJob(t *testing.T) {
	cause := errors.New("peer lost")
	e := NewEnv(DefaultConfig(4))
	e.SetTransport(errTransport{err: cause})
	d := FromSlice(e, []wrec{{K: 1, V: 1}, {K: 2, V: 2}, {K: 3, V: 3}})
	out := DistinctBy(d, func(r wrec) uint64 { return r.K })
	if got := out.Collect(); len(got) != 0 {
		t.Fatalf("failed job produced %d rows", len(got))
	}
	var je *JobError
	if err := e.Err(); !errors.As(err, &je) || !errors.Is(err, cause) {
		t.Fatalf("want JobError wrapping cause, got %v", err)
	}
	if e.Transport() == nil {
		t.Fatal("transport accessor lost the installed transport")
	}
}

// TestGlobalCountLocal pins the nil-transport semantics: GlobalCount and
// GlobalIsEmpty must behave exactly like Count and IsEmpty.
func TestGlobalCountLocal(t *testing.T) {
	d := FromSlice(env(4), ints(57))
	if d.GlobalCount() != d.Count() {
		t.Fatalf("GlobalCount %d != Count %d", d.GlobalCount(), d.Count())
	}
	if d.GlobalIsEmpty() {
		t.Fatal("non-empty dataset reported globally empty")
	}
	if !Empty[int](env(4)).GlobalIsEmpty() {
		t.Fatal("empty dataset not globally empty")
	}
}

// The convergence checks run once per superstep in the engine's hottest
// loops; without a transport they must stay free.
func BenchmarkTransportNilGlobalCount(b *testing.B) {
	d := FromSlice(env(4), ints(1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.GlobalCount() != 1024 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkTransportNilGlobalIsEmpty(b *testing.B) {
	d := FromSlice(env(4), ints(1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.GlobalIsEmpty() {
			b.Fatal("bad emptiness")
		}
	}
}
