package dataflow

// BulkIteration runs Flink-style while-loop semantics over a working set
// (§3.1, ExpandEmbeddings): body receives the current working set and the
// 1-based iteration number, and returns the next working set plus the
// elements to add to the result. Iteration stops when the working set
// becomes empty, maxIterations is reached, or the job fails (a cancelled or
// failed environment drains the working set, so runaway expansions abort
// between supersteps as well as inside them). The returned dataset is the
// union of all per-iteration results.
func BulkIteration[T any](initial *Dataset[T], maxIterations int,
	body func(iteration int, working *Dataset[T]) (next *Dataset[T], results *Dataset[T])) *Dataset[T] {
	env := initial.Env()
	acc := Empty[T](env)
	working := initial
	// Tag traced stages with their superstep so trace exports show where
	// each iteration's time went; cleared when the loop exits.
	defer env.MarkIteration(0)
	for it := 1; it <= maxIterations; it++ {
		// Convergence is a global decision: in a distributed job every
		// process must take the same number of supersteps or the collective
		// exchanges inside the body deadlock, so emptiness is checked across
		// all workers (a local no-op without a transport).
		if env.Failed() || working.GlobalIsEmpty() {
			break
		}
		env.MarkIteration(it)
		next, results := body(it, working)
		if results != nil {
			acc = Union(acc, results)
		}
		if next == nil {
			break
		}
		working = next
	}
	return acc
}
