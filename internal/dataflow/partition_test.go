package dataflow

import (
	"sort"
	"testing"
)

func TestShuffleTaggedSkipsRedundantExchange(t *testing.T) {
	e := env(4)
	d := FromSlice(e, ints(1000))
	key := func(x int) uint64 { return uint64(x % 7) }
	const tag = 42

	first := shuffleTagged(d, key, tag)
	m1 := e.Metrics()
	if m1.TotalNet == 0 {
		t.Fatal("first shuffle moved nothing")
	}
	second := shuffleTagged(first, key, tag)
	m2 := e.Metrics()
	if m2.TotalNet != m1.TotalNet {
		t.Fatalf("second shuffle moved data: %d -> %d", m1.TotalNet, m2.TotalNet)
	}
	if m2.Shuffles != m1.Shuffles {
		t.Fatal("second shuffle counted as an exchange")
	}
	if second.Count() != 1000 {
		t.Fatal("data lost")
	}
	// A different tag forces a real shuffle again.
	shuffleTagged(first, key, 43)
	if m3 := e.Metrics(); m3.Shuffles != m1.Shuffles+1 {
		t.Fatal("different tag should shuffle")
	}
}

func TestFilterPreservesPartitionTag(t *testing.T) {
	e := env(4)
	d := FromSlice(e, ints(100))
	key := func(x int) uint64 { return uint64(x) }
	tagged := shuffleTagged(d, key, 7)
	filtered := Filter(tagged, func(x int) bool { return x%2 == 0 })
	if filtered.partTag != 7 {
		t.Fatalf("filter dropped tag: %d", filtered.partTag)
	}
	mapped := Map(tagged, func(x int) int { return x + 1 })
	if mapped.partTag != 0 {
		t.Fatal("map must clear the tag (rows rewritten)")
	}
}

func TestUnionPartitionTag(t *testing.T) {
	e := env(3)
	key := func(x int) uint64 { return uint64(x) }
	a := shuffleTagged(FromSlice(e, ints(50)), key, 9)
	b := shuffleTagged(FromSlice(e, []int{100, 101}), key, 9)
	if Union(a, b).partTag != 9 {
		t.Fatal("union of same-tag inputs should keep tag")
	}
	c := shuffleTagged(FromSlice(e, []int{200}), key, 10)
	if Union(a, c).partTag != 0 {
		t.Fatal("union of different tags must clear tag")
	}
	if Union(a, Empty[int](e)).partTag != 9 {
		t.Fatal("union with empty should keep tag")
	}
}

func TestCoGroup(t *testing.T) {
	e := env(4)
	l := FromSlice(e, []int{1, 1, 2, 3})
	r := FromSlice(e, []int{2, 2, 3, 9})
	key := func(x int) uint64 { return uint64(x) }
	type row struct{ k, ls, rs int }
	out := CoGroup(l, r, key, key, func(k uint64, ls, rs []int, emit func(row)) {
		emit(row{k: int(k), ls: len(ls), rs: len(rs)})
	}).Collect()
	byKey := map[int]row{}
	for _, g := range out {
		byKey[g.k] = g
	}
	if len(byKey) != 4 {
		t.Fatalf("groups: %v", byKey)
	}
	if byKey[1].ls != 2 || byKey[1].rs != 0 {
		t.Fatalf("key 1: %+v", byKey[1])
	}
	if byKey[2].ls != 1 || byKey[2].rs != 2 {
		t.Fatalf("key 2: %+v", byKey[2])
	}
	if byKey[9].ls != 0 || byKey[9].rs != 1 {
		t.Fatalf("key 9 (right-only): %+v", byKey[9])
	}
}

func TestCoGroupLeftOuterShape(t *testing.T) {
	e := env(2)
	l := FromSlice(e, []int{1, 2})
	r := FromSlice(e, []int{2})
	key := func(x int) uint64 { return uint64(x) }
	// A classic left outer join via CoGroup.
	out := CoGroup(l, r, key, key, func(_ uint64, ls, rs []int, emit func([2]int)) {
		for _, lv := range ls {
			if len(rs) == 0 {
				emit([2]int{lv, -1})
				continue
			}
			for _, rv := range rs {
				emit([2]int{lv, rv})
			}
		}
	}).Collect()
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	if len(out) != 2 || out[0] != [2]int{1, -1} || out[1] != [2]int{2, 2} {
		t.Fatalf("outer join: %v", out)
	}
}

func TestJoinTaggedReusesPartitioning(t *testing.T) {
	run := func(tag uint64) (MetricsSnapshot, []int) {
		e := env(4)
		l := FromSlice(e, ints(500))
		r := FromSlice(e, ints(500))
		key := func(x int) uint64 { return uint64(x) }
		pair := func(a, b int, emit func(int)) { emit(a) }
		j1 := JoinTagged(l, r, key, key, pair, RepartitionHash, tag)
		// Second join on the same key: with a tag, j1 needs no reshuffle.
		j2 := JoinTagged(j1, r, key, key, pair, RepartitionHash, tag)
		got := j2.Collect()
		sort.Ints(got)
		return e.Metrics(), got
	}
	tagged, resTagged := run(77)
	untagged, resUntagged := run(0)
	// The reused exchange would have moved no bytes (rows already sit on
	// their hash partition); the saving is the exchange stage and its scan.
	if tagged.Shuffles != untagged.Shuffles-1 {
		t.Fatalf("tagged should save one exchange: %d vs %d", tagged.Shuffles, untagged.Shuffles)
	}
	if tagged.TotalCPU >= untagged.TotalCPU {
		t.Fatalf("tagged joins should scan less: %d vs %d", tagged.TotalCPU, untagged.TotalCPU)
	}
	if len(resTagged) != len(resUntagged) {
		t.Fatalf("results differ: %d vs %d", len(resTagged), len(resUntagged))
	}
	for i := range resTagged {
		if resTagged[i] != resUntagged[i] {
			t.Fatal("partition reuse changed results")
		}
	}
}
