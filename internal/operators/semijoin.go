package operators

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
)

// SemiJoinEmbeddings implements exists() pattern predicates: a left
// embedding survives iff at least one right embedding extends it
// consistently (same join keys, morphism holds on the combined binding).
// With Negated it becomes an anti join (NOT exists). The right side's
// columns never appear in the output — its metadata is the left input's.
type SemiJoinEmbeddings struct {
	Left, Right Operator
	Morph       Morphism
	Negated     bool

	joinVars   []string
	leftCols   []int
	rightCols  []int
	dropCols   []int
	mergedMeta *embedding.Meta
}

// NewSemiJoinEmbeddings builds the semi (or anti) join on the variables
// shared between the inputs; with no shared variables the right side acts
// as a global non-emptiness test.
func NewSemiJoinEmbeddings(left, right Operator, morph Morphism, negated bool) *SemiJoinEmbeddings {
	lm, rm := left.Meta(), right.Meta()
	shared := lm.SharedVars(rm)
	sort.Strings(shared)
	leftCols := make([]int, len(shared))
	rightCols := make([]int, len(shared))
	for i, v := range shared {
		lc, _ := lm.Column(v)
		rc, _ := rm.Column(v)
		leftCols[i] = lc
		rightCols[i] = rc
	}
	mergedMeta, dropCols := lm.Merge(rm)
	return &SemiJoinEmbeddings{
		Left: left, Right: right, Morph: morph, Negated: negated,
		joinVars: shared, leftCols: leftCols, rightCols: rightCols,
		dropCols: dropCols, mergedMeta: mergedMeta,
	}
}

// Meta implements Operator.
func (op *SemiJoinEmbeddings) Meta() *embedding.Meta { return op.Left.Meta() }

// Children implements Operator.
func (op *SemiJoinEmbeddings) Children() []Operator { return []Operator{op.Left, op.Right} }

// Description implements Operator.
func (op *SemiJoinEmbeddings) Description() string {
	kind := "SemiJoinEmbeddings"
	if op.Negated {
		kind = "AntiJoinEmbeddings"
	}
	return fmt.Sprintf("%s(on=%s, %s/%s)", kind, strings.Join(op.joinVars, ","), op.Morph.Vertex, op.Morph.Edge)
}

// Evaluate implements Operator.
func (op *SemiJoinEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	left := op.Left.Evaluate()
	right := op.Right.Evaluate()
	return traced(op, left.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return op.evaluate(left, right)
	})
}

func (op *SemiJoinEmbeddings) evaluate(left, right *dataflow.Dataset[embedding.Embedding]) *dataflow.Dataset[embedding.Embedding] {
	lc, rc := op.leftCols, op.rightCols
	drop := op.dropCols
	mergedMeta := op.mergedMeta
	morph := op.Morph
	negated := op.Negated
	return dataflow.CoGroup(left, right,
		func(e embedding.Embedding) uint64 { return keyOf(e, lc) },
		func(e embedding.Embedding) uint64 { return keyOf(e, rc) },
		func(_ uint64, ls, rs []embedding.Embedding, emit func(embedding.Embedding)) {
			for _, l := range ls {
				found := false
				for _, r := range rs {
					if !sameKeys(l, r, lc, rc) {
						continue
					}
					if ValidMorphism(l.Merge(r, drop), mergedMeta, morph) {
						found = true
						break
					}
				}
				if found != negated {
					emit(l)
				}
			}
		})
}
