package operators

import (
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/trace"
)

// panicOp is a minimal Operator for exercising traced directly.
type panicOp struct{}

func (panicOp) Evaluate() *dataflow.Dataset[embedding.Embedding] { panic("unused") }
func (panicOp) Meta() *embedding.Meta                            { return nil }
func (panicOp) Description() string                              { return "PanicOp" }
func (panicOp) Children() []Operator                             { return nil }

// TestTracedClosesScopeOnPanic is the regression test for the tracepair
// finding: traced must pop its operator scope via defer, so a panic inside
// eval does not leak the frame. A leaked frame would attribute every stage
// traced afterwards to the panicked operator.
func TestTracedClosesScopeOnPanic(t *testing.T) {
	c := trace.NewCollector()
	env := dataflow.NewEnv(dataflow.DefaultConfig(1))
	env.SetTracer(c)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("eval panic did not propagate")
			}
		}()
		traced(panicOp{}, env, func() *dataflow.Dataset[embedding.Embedding] {
			panic("eval failure")
		})
	}()

	// With the scope closed, a stage traced after the panic belongs to no
	// operator; with a leaked frame it would read "PanicOp".
	c.BeginStage(1, "FlatMap", false, 1)
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	if spans[0].Op != "" {
		t.Fatalf("stage after panic attributed to leaked operator scope %q", spans[0].Op)
	}

	// The panicked evaluation itself is still recorded (rows 0).
	st, ok := c.Op(panicOp{})
	if !ok {
		t.Fatal("panicked operator left no stats")
	}
	if st.Evaluations != 1 || st.Rows != 0 {
		t.Fatalf("want 1 evaluation with 0 rows, got %+v", st)
	}
}
