package operators

import (
	"sort"
	"testing"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

func env() *dataflow.Env { return dataflow.NewEnv(dataflow.DefaultConfig(3)) }

// chainGraph: v1 -e1-> v2 -e2-> v3 -e3-> v1 (a directed triangle), labels
// Person, knows; v1 has name=x.
func chainGraph(e *dataflow.Env) (*dataflow.Dataset[epgm.Vertex], *dataflow.Dataset[epgm.Edge], []epgm.ID) {
	v1 := epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.Set("name", epgm.PVString("x"))}
	v2 := epgm.Vertex{ID: epgm.NewID(), Label: "Person"}
	v3 := epgm.Vertex{ID: epgm.NewID(), Label: "Tag"}
	e1 := epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: v1.ID, Target: v2.ID}
	e2 := epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: v2.ID, Target: v3.ID}
	e3 := epgm.Edge{ID: epgm.NewID(), Label: "likes", Source: v3.ID, Target: v1.ID}
	vs := dataflow.FromSlice(e, []epgm.Vertex{v1, v2, v3})
	es := dataflow.FromSlice(e, []epgm.Edge{e1, e2, e3})
	return vs, es, []epgm.ID{v1.ID, v2.ID, v3.ID, e1.ID, e2.ID, e3.ID}
}

func TestFilterAndProjectVertices(t *testing.T) {
	en := env()
	vs, _, ids := chainGraph(en)
	qv := &cypher.QueryVertex{Var: "p", Labels: []string{"Person"}, Projection: []string{"name"}}
	op := NewFilterAndProjectVertices(vs, qv)
	out := op.Evaluate().Collect()
	if len(out) != 2 {
		t.Fatalf("persons=%d", len(out))
	}
	meta := op.Meta()
	if c, ok := meta.Column("p"); !ok || c != 0 {
		t.Fatal("meta column")
	}
	if pc, ok := meta.PropColumn("p", "name"); !ok || pc != 0 {
		t.Fatal("meta prop column")
	}
	// v1 carries name=x, v2 has no name => Null in propData.
	foundX := false
	for _, e := range out {
		if e.ID(0) == ids[0] {
			if e.Prop(0).Str() != "x" {
				t.Fatalf("projected name=%v", e.Prop(0))
			}
			foundX = true
		} else if !e.Prop(0).IsNull() {
			t.Fatalf("v2 name should be Null, got %v", e.Prop(0))
		}
	}
	if !foundX {
		t.Fatal("v1 missing")
	}
}

func TestFilterAndProjectEdgesDirectedAndUndirected(t *testing.T) {
	en := env()
	_, es, _ := chainGraph(en)
	qe := &cypher.QueryEdge{Var: "e", Types: []string{"knows"}, Source: "a", Target: "b", MinHops: 1, MaxHops: 1}
	directed := NewFilterAndProjectEdges(es, qe).Evaluate()
	if directed.Count() != 2 {
		t.Fatalf("directed=%d", directed.Count())
	}
	und := &cypher.QueryEdge{Var: "e", Types: []string{"knows"}, Source: "a", Target: "b",
		Undirected: true, MinHops: 1, MaxHops: 1}
	undirected := NewFilterAndProjectEdges(es, und).Evaluate()
	if undirected.Count() != 4 {
		t.Fatalf("undirected=%d want 4 (both orientations)", undirected.Count())
	}
}

func TestFilterAndProjectEdgesLoop(t *testing.T) {
	en := env()
	v := epgm.Vertex{ID: epgm.NewID(), Label: "P"}
	loop := epgm.Edge{ID: epgm.NewID(), Label: "self", Source: v.ID, Target: v.ID}
	other := epgm.Edge{ID: epgm.NewID(), Label: "self", Source: v.ID, Target: epgm.NewID()}
	es := dataflow.FromSlice(en, []epgm.Edge{loop, other})
	qe := &cypher.QueryEdge{Var: "e", Source: "a", Target: "a", MinHops: 1, MaxHops: 1}
	op := NewFilterAndProjectEdges(es, qe)
	out := op.Evaluate().Collect()
	if len(out) != 1 {
		t.Fatalf("loops=%d", len(out))
	}
	if op.Meta().Columns() != 2 {
		t.Fatalf("loop meta columns=%d want 2", op.Meta().Columns())
	}
}

func TestJoinEmbeddingsPanicsWithoutSharedVars(t *testing.T) {
	en := env()
	vs, _, _ := chainGraph(en)
	a := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "a"})
	b := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewJoinEmbeddings(a, b, Morphism{}, dataflow.RepartitionHash)
}

func TestCartesianProduct(t *testing.T) {
	en := env()
	vs, _, _ := chainGraph(en)
	a := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "a", Labels: []string{"Person"}})
	b := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "b", Labels: []string{"Tag"}})
	cp := NewCartesianProduct(a, b, Morphism{})
	if got := cp.Evaluate().Count(); got != 2 {
		t.Fatalf("cartesian=%d want 2", got)
	}
	// ISO with overlapping labels: (a:Person),(b:Person) forbids a=b.
	b2 := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "b", Labels: []string{"Person"}})
	iso := NewCartesianProduct(a, b2, Morphism{Vertex: Isomorphism})
	if got := iso.Evaluate().Count(); got != 2 {
		t.Fatalf("iso cartesian=%d want 2 (4 minus diagonal)", got)
	}
}

func TestProjectEmbeddingsOperator(t *testing.T) {
	en := env()
	vs, es, _ := chainGraph(en)
	qe := &cypher.QueryEdge{Var: "e", Types: []string{"knows"}, Source: "a", Target: "b", MinHops: 1, MaxHops: 1}
	leaf := NewFilterAndProjectEdges(es, qe)
	vleaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "a", Projection: []string{"name"}})
	join := NewJoinEmbeddings(vleaf, leaf, Morphism{}, dataflow.RepartitionHash)
	proj := NewProjectEmbeddings(join, []string{"b"}, []embedding.PropRef{{Var: "a", Key: "name"}})
	out := proj.Evaluate().Collect()
	if len(out) != 2 {
		t.Fatalf("rows=%d", len(out))
	}
	if proj.Meta().Columns() != 1 || proj.Meta().PropColumns() != 1 {
		t.Fatalf("meta: %s", proj.Meta())
	}
	for _, e := range out {
		if e.Columns() != 1 {
			t.Fatalf("columns=%d", e.Columns())
		}
	}
}

func TestExpandEmbeddingsForwardAndReverseAgree(t *testing.T) {
	en := env()
	vs, es, _ := chainGraph(en)
	qe := &cypher.QueryEdge{Var: "e", Types: []string{"knows"}, Source: "a", Target: "b", MinHops: 1, MaxHops: 2}

	aLeaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "a"})
	fwd, err := NewExpandEmbeddings(aLeaf, es, qe, Morphism{}, false)
	if err != nil {
		t.Fatal(err)
	}
	bLeaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "b"})
	rev, err := NewExpandEmbeddings(bLeaf, es, qe, Morphism{}, true)
	if err != nil {
		t.Fatal(err)
	}

	key := func(e embedding.Embedding, m *embedding.Meta) string {
		ca, _ := m.Column("a")
		cb, _ := m.Column("b")
		cp, _ := m.Column("e")
		return (e.ID(ca).String() + "|" + e.ID(cb).String() + "|" + pathKey(e.Path(cp)))
	}
	var fk, rk []string
	for _, e := range fwd.Evaluate().Collect() {
		fk = append(fk, key(e, fwd.Meta()))
	}
	for _, e := range rev.Evaluate().Collect() {
		rk = append(rk, key(e, rev.Meta()))
	}
	sort.Strings(fk)
	sort.Strings(rk)
	if len(fk) != len(rk) {
		t.Fatalf("forward=%d reverse=%d", len(fk), len(rk))
	}
	for i := range fk {
		if fk[i] != rk[i] {
			t.Fatalf("mismatch: %s vs %s", fk[i], rk[i])
		}
	}
}

func pathKey(ids []epgm.ID) string {
	s := ""
	for _, id := range ids {
		s += id.String() + ","
	}
	return s
}

func TestExpandRequiresBoundEndpoint(t *testing.T) {
	en := env()
	vs, es, _ := chainGraph(en)
	leaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "z"})
	qe := &cypher.QueryEdge{Var: "e", Source: "a", Target: "b", MinHops: 1, MaxHops: 2}
	if _, err := NewExpandEmbeddings(leaf, es, qe, Morphism{}, false); err == nil {
		t.Fatal("expected error: input binds neither endpoint")
	}
}

func TestValidMorphism(t *testing.T) {
	meta := embedding.NewMeta()
	meta.AddEntry("a", embedding.VertexEntry)
	meta.AddEntry("e", embedding.EdgeEntry)
	meta.AddEntry("b", embedding.VertexEntry)

	var dup embedding.Embedding
	dup = dup.AppendID(1).AppendID(9).AppendID(1)
	if !ValidMorphism(dup, meta, Morphism{}) {
		t.Fatal("homomorphism should accept duplicates")
	}
	if ValidMorphism(dup, meta, Morphism{Vertex: Isomorphism}) {
		t.Fatal("vertex iso should reject duplicate vertices")
	}
	if !ValidMorphism(dup, meta, Morphism{Edge: Isomorphism}) {
		t.Fatal("edge iso should not care about vertices")
	}

	// Path columns contribute interleaved edge/vertex ids.
	pm := embedding.NewMeta()
	pm.AddEntry("a", embedding.VertexEntry)
	pm.AddEntry("p", embedding.PathEntry)
	var withPath embedding.Embedding
	withPath = withPath.AppendID(5).AppendPath([]epgm.ID{7, 5, 8}) // interior vertex 5 duplicates a
	if ValidMorphism(withPath, pm, Morphism{Vertex: Isomorphism}) {
		t.Fatal("path interior duplicate not detected")
	}
	if !ValidMorphism(withPath, pm, Morphism{Edge: Isomorphism}) {
		t.Fatal("edges 7,8 are distinct")
	}
	var dupEdge embedding.Embedding
	dupEdge = dupEdge.AppendID(5).AppendPath([]epgm.ID{7, 6, 7})
	if ValidMorphism(dupEdge, pm, Morphism{Edge: Isomorphism}) {
		t.Fatal("duplicate path edge not detected")
	}
}

func TestSemanticsString(t *testing.T) {
	if Homomorphism.String() != "HOMO" || Isomorphism.String() != "ISO" {
		t.Fatal("semantics names")
	}
}
