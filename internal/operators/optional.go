package operators

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

// OptionalJoinEmbeddings implements OPTIONAL MATCH: a left outer join of the
// mandatory solutions with an optional sub-pattern's embeddings. Every left
// embedding survives; when no right extension passes the join keys, the
// morphism check and the group predicates, the right-only columns are bound
// to NULL.
type OptionalJoinEmbeddings struct {
	Left, Right Operator
	Morph       Morphism
	// Predicates are the OPTIONAL MATCH WHERE conjuncts evaluated on each
	// candidate extension (they decide matched-vs-null, unlike a post-join
	// filter).
	Predicates []cypher.Expr

	joinVars   []string
	leftCols   []int
	rightCols  []int
	dropCols   []int
	outputMeta *embedding.Meta
	nullCols   int // right columns appended on a null extension
	nullProps  int // right property columns appended on a null extension
}

// NewOptionalJoinEmbeddings builds the outer join on the variables shared
// between the two inputs; without shared variables every combination is
// tried (a cartesian outer join).
func NewOptionalJoinEmbeddings(left, right Operator, morph Morphism, predicates []cypher.Expr) *OptionalJoinEmbeddings {
	lm, rm := left.Meta(), right.Meta()
	shared := lm.SharedVars(rm)
	sort.Strings(shared)
	leftCols := make([]int, len(shared))
	rightCols := make([]int, len(shared))
	for i, v := range shared {
		lc, _ := lm.Column(v)
		rc, _ := rm.Column(v)
		leftCols[i] = lc
		rightCols[i] = rc
	}
	outputMeta, dropCols := lm.Merge(rm)
	return &OptionalJoinEmbeddings{
		Left: left, Right: right, Morph: morph, Predicates: predicates,
		joinVars: shared, leftCols: leftCols, rightCols: rightCols,
		dropCols: dropCols, outputMeta: outputMeta,
		nullCols:  rm.Columns() - len(dropCols),
		nullProps: rm.PropColumns(),
	}
}

// Meta implements Operator.
func (op *OptionalJoinEmbeddings) Meta() *embedding.Meta { return op.outputMeta }

// Children implements Operator.
func (op *OptionalJoinEmbeddings) Children() []Operator { return []Operator{op.Left, op.Right} }

// Description implements Operator.
func (op *OptionalJoinEmbeddings) Description() string {
	return fmt.Sprintf("OptionalJoinEmbeddings(on=%s, preds=%d, %s/%s)",
		strings.Join(op.joinVars, ","), len(op.Predicates), op.Morph.Vertex, op.Morph.Edge)
}

// padNull extends a left embedding with NULL bindings for every right-only
// column and property.
func (op *OptionalJoinEmbeddings) padNull(l embedding.Embedding) embedding.Embedding {
	e := l
	for i := 0; i < op.nullCols; i++ {
		e = e.AppendNull()
	}
	if op.nullProps > 0 {
		nulls := make([]epgm.PropertyValue, op.nullProps)
		e = e.AppendProps(nulls...)
	}
	return e
}

// Evaluate implements Operator.
func (op *OptionalJoinEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	left := op.Left.Evaluate()
	right := op.Right.Evaluate()
	return traced(op, left.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return op.evaluate(left, right)
	})
}

func (op *OptionalJoinEmbeddings) evaluate(left, right *dataflow.Dataset[embedding.Embedding]) *dataflow.Dataset[embedding.Embedding] {
	lc, rc := op.leftCols, op.rightCols
	drop := op.dropCols
	meta := op.outputMeta
	morph := op.Morph
	preds := op.Predicates

	lkey := func(e embedding.Embedding) uint64 { return keyOf(e, lc) }
	rkey := func(e embedding.Embedding) uint64 { return keyOf(e, rc) }
	return dataflow.CoGroup(left, right, lkey, rkey,
		func(_ uint64, ls, rs []embedding.Embedding, emit func(embedding.Embedding)) {
			for _, l := range ls {
				matched := false
				for _, r := range rs {
					if !sameKeys(l, r, lc, rc) {
						continue
					}
					merged := l.Merge(r, drop)
					if !ValidMorphism(merged, meta, morph) {
						continue
					}
					if !passes(merged, meta, preds) {
						continue
					}
					matched = true
					emit(merged)
				}
				if !matched {
					emit(op.padNull(l))
				}
			}
		})
}

func passes(e embedding.Embedding, meta *embedding.Meta, preds []cypher.Expr) bool {
	if len(preds) == 0 {
		return true
	}
	lookup := embeddingLookup(e, meta)
	for _, p := range preds {
		if !cypher.EvalPredicate(p, lookup) {
			return false
		}
	}
	return true
}
