// Package operators implements the physical query operators of §3.1. Every
// operator consumes and produces dataflow datasets of embeddings and carries
// the embedding metadata describing its output columns. The planner
// assembles operators into a tree; Evaluate walks the tree bottom-up.
package operators

import (
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

// Semantics selects homomorphism or isomorphism for one element kind
// (§2.2/§2.3: unlike Neo4j, the caller chooses both independently).
type Semantics int

// Matching semantics.
const (
	Homomorphism Semantics = iota
	Isomorphism
)

// String returns "HOMO" or "ISO".
func (s Semantics) String() string {
	if s == Isomorphism {
		return "ISO"
	}
	return "HOMO"
}

// Morphism bundles the vertex and edge semantics of one query execution.
type Morphism struct {
	Vertex Semantics
	Edge   Semantics
}

// traced wraps the dataflow-facing part of an operator's evaluation in a
// tracing scope: stages launched inside eval are attributed to the
// operator's Description, and the operator's actual output cardinality and
// self wall time are recorded under the operator itself as the lookup
// token (EXPLAIN ANALYZE resolves plan nodes through it). Children must be
// evaluated before entering the scope so their stages attribute to
// themselves; eval therefore receives already-evaluated inputs. Without a
// collector on the environment the wrapper is a single nil check.
func traced(op Operator, env *dataflow.Env, eval func() *dataflow.Dataset[embedding.Embedding]) *dataflow.Dataset[embedding.Embedding] {
	c := env.Tracer()
	if c == nil {
		return eval()
	}
	// The pop is deferred so the scope closes even when eval panics (the
	// engine contains partition panics, but a leaked frame would silently
	// attribute every later stage to this operator). On the panic path the
	// cardinality stays 0; the job is failing anyway.
	var rows int64
	c.PushOp(op, op.Description())
	defer func() { c.PopOp(op, rows) }()
	out := eval()
	rows = out.Count()
	return out
}

// Operator is one node of a physical query plan.
type Operator interface {
	// Evaluate executes the subtree and returns its embeddings.
	Evaluate() *dataflow.Dataset[embedding.Embedding]
	// Meta describes the embedding columns Evaluate produces.
	Meta() *embedding.Meta
	// Description names the operator and its parameters for EXPLAIN output.
	Description() string
	// Children returns the operator's inputs.
	Children() []Operator
}

// vertexIDs collects the data-vertex identifiers bound by an embedding:
// every vertex column plus the interior vertices of every path column
// (odd positions of the alternating edge/vertex id list).
func vertexIDs(e embedding.Embedding, meta *embedding.Meta) []epgm.ID {
	var out []epgm.ID
	for c := 0; c < meta.Columns(); c++ {
		if e.IsNullAt(c) {
			continue
		}
		switch meta.Kind(c) {
		case embedding.VertexEntry:
			out = append(out, e.ID(c))
		case embedding.PathEntry:
			path := e.Path(c)
			for i := 1; i < len(path); i += 2 {
				out = append(out, path[i])
			}
		}
	}
	return out
}

// edgeIDs collects the data-edge identifiers bound by an embedding: every
// edge column plus the edges of every path column (even positions).
func edgeIDs(e embedding.Embedding, meta *embedding.Meta) []epgm.ID {
	var out []epgm.ID
	for c := 0; c < meta.Columns(); c++ {
		if e.IsNullAt(c) {
			continue
		}
		switch meta.Kind(c) {
		case embedding.EdgeEntry:
			out = append(out, e.ID(c))
		case embedding.PathEntry:
			path := e.Path(c)
			for i := 0; i < len(path); i += 2 {
				out = append(out, path[i])
			}
		}
	}
	return out
}

func allDistinct(ids []epgm.ID) bool {
	seen := make(map[epgm.ID]struct{}, len(ids))
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			return false
		}
		seen[id] = struct{}{}
	}
	return true
}

// ValidMorphism checks an embedding against the configured semantics:
// isomorphic vertices require all bound vertex ids to be pairwise distinct,
// isomorphic edges likewise for edge ids. Homomorphism imposes nothing.
func ValidMorphism(e embedding.Embedding, meta *embedding.Meta, m Morphism) bool {
	if m.Vertex == Isomorphism && !allDistinct(vertexIDs(e, meta)) {
		return false
	}
	if m.Edge == Isomorphism && !allDistinct(edgeIDs(e, meta)) {
		return false
	}
	return true
}

// embeddingLookup builds a cypher predicate Lookup over an embedding's
// property columns.
func embeddingLookup(e embedding.Embedding, meta *embedding.Meta) func(variable, key string) epgm.PropertyValue {
	return func(variable, key string) epgm.PropertyValue {
		if col, ok := meta.PropColumn(variable, key); ok {
			return e.Prop(col)
		}
		return epgm.Null
	}
}
