package operators

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
)

// JoinEmbeddings combines two sub-query results on their shared variables.
// It uses a flat join (§3.1): a joined embedding is emitted only if the
// configured morphism semantics hold, avoiding a separate filter stage.
type JoinEmbeddings struct {
	Left, Right Operator
	Morph       Morphism
	Hint        dataflow.JoinHint

	joinVars   []string
	leftCols   []int
	rightCols  []int
	dropCols   []int
	outputMeta *embedding.Meta
}

// NewJoinEmbeddings builds a join on the variables shared between the two
// inputs. It panics if the inputs share no variables; the planner uses
// NewCartesianProduct for that case.
func NewJoinEmbeddings(left, right Operator, morph Morphism, hint dataflow.JoinHint) *JoinEmbeddings {
	lm, rm := left.Meta(), right.Meta()
	shared := lm.SharedVars(rm)
	if len(shared) == 0 {
		panic("operators: JoinEmbeddings requires shared variables")
	}
	// Canonical order makes the shuffle key deterministic for a variable
	// set, enabling partition reuse across joins on the same variables.
	sort.Strings(shared)
	leftCols := make([]int, len(shared))
	rightCols := make([]int, len(shared))
	for i, v := range shared {
		lc, _ := lm.Column(v)
		rc, _ := rm.Column(v)
		leftCols[i] = lc
		rightCols[i] = rc
	}
	outputMeta, dropCols := lm.Merge(rm)
	return &JoinEmbeddings{
		Left: left, Right: right, Morph: morph, Hint: hint,
		joinVars: shared, leftCols: leftCols, rightCols: rightCols,
		dropCols: dropCols, outputMeta: outputMeta,
	}
}

// Meta implements Operator.
func (op *JoinEmbeddings) Meta() *embedding.Meta { return op.outputMeta }

// Children implements Operator.
func (op *JoinEmbeddings) Children() []Operator { return []Operator{op.Left, op.Right} }

// Description implements Operator.
func (op *JoinEmbeddings) Description() string {
	return fmt.Sprintf("JoinEmbeddings(on=%s, %s/%s)",
		strings.Join(op.joinVars, ","), op.Morph.Vertex, op.Morph.Edge)
}

// keyOf combines the identifiers at the join columns into one shuffle key.
func keyOf(e embedding.Embedding, cols []int) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, c := range cols {
		h = (h ^ uint64(e.ID(c))) * 0x100000001b3
		h ^= h >> 29
	}
	return h
}

// sameKeys verifies actual id equality at the join columns (guarding
// against hash collisions).
func sameKeys(l, r embedding.Embedding, lc, rc []int) bool {
	for i := range lc {
		if l.ID(lc[i]) != r.ID(rc[i]) {
			return false
		}
	}
	return true
}

// partitionTag derives the partition-reuse tag for a join variable set: two
// joins on the same variables shuffle identically, so the second can reuse
// the first's partitioning.
func partitionTag(vars []string) uint64 {
	return dataflow.HashString(strings.Join(vars, "\x00")) | 1
}

// Evaluate implements Operator.
func (op *JoinEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	left := op.Left.Evaluate()
	right := op.Right.Evaluate()
	return traced(op, left.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return op.evaluate(left, right)
	})
}

func (op *JoinEmbeddings) evaluate(left, right *dataflow.Dataset[embedding.Embedding]) *dataflow.Dataset[embedding.Embedding] {
	lc, rc := op.leftCols, op.rightCols
	drop := op.dropCols
	meta := op.outputMeta
	morph := op.Morph
	return dataflow.JoinTagged(left, right,
		func(e embedding.Embedding) uint64 { return keyOf(e, lc) },
		func(e embedding.Embedding) uint64 { return keyOf(e, rc) },
		func(l, r embedding.Embedding, emit func(embedding.Embedding)) {
			if !sameKeys(l, r, lc, rc) {
				return
			}
			merged := l.Merge(r, drop)
			if ValidMorphism(merged, meta, morph) {
				emit(merged)
			}
		}, op.Hint, partitionTag(op.joinVars))
}

// CartesianProduct combines two sub-queries without shared variables. It
// broadcasts the (expectedly smaller) left input, which is how a dataflow
// system realizes a cross join.
type CartesianProduct struct {
	Left, Right Operator
	Morph       Morphism

	outputMeta *embedding.Meta
}

// NewCartesianProduct builds a cross join.
func NewCartesianProduct(left, right Operator, morph Morphism) *CartesianProduct {
	outputMeta, _ := left.Meta().Merge(right.Meta())
	return &CartesianProduct{Left: left, Right: right, Morph: morph, outputMeta: outputMeta}
}

// Meta implements Operator.
func (op *CartesianProduct) Meta() *embedding.Meta { return op.outputMeta }

// Children implements Operator.
func (op *CartesianProduct) Children() []Operator { return []Operator{op.Left, op.Right} }

// Description implements Operator.
func (op *CartesianProduct) Description() string { return "CartesianProduct" }

// Evaluate implements Operator.
func (op *CartesianProduct) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	left := op.Left.Evaluate()
	right := op.Right.Evaluate()
	meta := op.outputMeta
	morph := op.Morph
	return traced(op, left.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return dataflow.Join(left, right,
			func(embedding.Embedding) uint64 { return 0 },
			func(embedding.Embedding) uint64 { return 0 },
			func(l, r embedding.Embedding, emit func(embedding.Embedding)) {
				merged := l.Merge(r, nil)
				if ValidMorphism(merged, meta, morph) {
					emit(merged)
				}
			}, dataflow.BroadcastLeft)
	})
}
