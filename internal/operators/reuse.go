package operators

import (
	"fmt"
	"strings"
	"sync"

	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
)

// This file implements recurring-subquery reuse, the optimization the paper
// names as ongoing work (§6): when a query contains several structurally
// identical sub-patterns — Q5's three (:Person)-[:knows]->(:Person) edges,
// Q6's repeated (:Person)-[:hasInterest]->(:Tag) edges — their leaf
// operators differ only in variable names. The planner evaluates one
// canonical leaf (wrapped in Cached so the dataflow job runs once) and
// derives the others through Alias, which renames the embedding metadata
// without touching the data.

// Cached wraps an operator so that Evaluate runs its subtree exactly once;
// later calls return the same dataset. Embeddings are immutable, so sharing
// the dataset between consumers is safe.
type Cached struct {
	Inner Operator

	once   sync.Once
	result *dataflow.Dataset[embedding.Embedding]
}

// NewCached wraps op with single-evaluation semantics.
func NewCached(op Operator) *Cached { return &Cached{Inner: op} }

// Evaluate implements Operator.
func (op *Cached) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	op.once.Do(func() { op.result = op.Inner.Evaluate() })
	return op.result
}

// Meta implements Operator.
func (op *Cached) Meta() *embedding.Meta { return op.Inner.Meta() }

// Children implements Operator.
func (op *Cached) Children() []Operator { return []Operator{op.Inner} }

// Description implements Operator.
func (op *Cached) Description() string { return "Cached" }

// Alias presents a shared sub-result under different variable names: the
// embedding data passes through unchanged while the metadata rebinds each
// column (and property reference) per the rename map.
type Alias struct {
	In     Operator
	Rename map[string]string // old variable -> new variable

	meta *embedding.Meta
}

// NewAlias builds an alias over in. Variables absent from rename keep their
// names.
func NewAlias(in Operator, rename map[string]string) *Alias {
	inMeta := in.Meta()
	meta := embedding.NewMeta()
	mapped := func(v string) string {
		if n, ok := rename[v]; ok {
			return n
		}
		return v
	}
	for c := 0; c < inMeta.Columns(); c++ {
		meta.AddEntry(mapped(inMeta.Var(c)), inMeta.Kind(c))
	}
	for i := 0; i < inMeta.PropColumns(); i++ {
		ref := inMeta.PropRefAt(i)
		meta.AddProp(mapped(ref.Var), ref.Key)
	}
	return &Alias{In: in, Rename: rename, meta: meta}
}

// Evaluate implements Operator.
func (op *Alias) Evaluate() *dataflow.Dataset[embedding.Embedding] { return op.In.Evaluate() }

// Meta implements Operator.
func (op *Alias) Meta() *embedding.Meta { return op.meta }

// Children implements Operator.
func (op *Alias) Children() []Operator { return []Operator{op.In} }

// Description implements Operator.
func (op *Alias) Description() string {
	pairs := make([]string, 0, len(op.Rename))
	for from, to := range op.Rename {
		pairs = append(pairs, from+"->"+to)
	}
	// Sort for deterministic output.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j] < pairs[j-1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return fmt.Sprintf("Alias(%s)", strings.Join(pairs, ", "))
}
