package operators

import (
	"fmt"
	"strings"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

// FilterAndProjectVertices is the leaf operator for a query vertex: in one
// FlatMap it selects vertices satisfying the element-centric predicates,
// projects the property keys required downstream and transforms each
// survivor into a single-column embedding (§3.1's fused
// Select→Project→Transform).
type FilterAndProjectVertices struct {
	In     *dataflow.Dataset[epgm.Vertex]
	Vertex *cypher.QueryVertex

	meta *embedding.Meta
}

// NewFilterAndProjectVertices builds the leaf and its output metadata.
func NewFilterAndProjectVertices(in *dataflow.Dataset[epgm.Vertex], qv *cypher.QueryVertex) *FilterAndProjectVertices {
	meta := embedding.NewMeta()
	meta.AddEntry(qv.Var, embedding.VertexEntry)
	for _, key := range qv.Projection {
		meta.AddProp(qv.Var, key)
	}
	return &FilterAndProjectVertices{In: in, Vertex: qv, meta: meta}
}

// Meta implements Operator.
func (op *FilterAndProjectVertices) Meta() *embedding.Meta { return op.meta }

// Children implements Operator.
func (op *FilterAndProjectVertices) Children() []Operator { return nil }

// Description implements Operator.
func (op *FilterAndProjectVertices) Description() string {
	return fmt.Sprintf("FilterAndProjectVertices(%s%s, preds=%d)",
		op.Vertex.Var, labelSuffix(op.Vertex.Labels), len(op.Vertex.Predicates))
}

// Evaluate implements Operator.
func (op *FilterAndProjectVertices) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	return traced(op, op.In.Env(), op.evaluate)
}

func (op *FilterAndProjectVertices) evaluate() *dataflow.Dataset[embedding.Embedding] {
	qv := op.Vertex
	return dataflow.FlatMap(op.In, func(v epgm.Vertex, emit func(embedding.Embedding)) {
		if !cypher.MatchesLabel(v.Label, qv.Labels) {
			return
		}
		if !cypher.EvalElement(qv.Predicates, qv.Var, v.Properties) {
			return
		}
		var e embedding.Embedding
		e = e.AppendID(v.ID)
		if len(qv.Projection) > 0 {
			values := make([]epgm.PropertyValue, len(qv.Projection))
			for i, key := range qv.Projection {
				values[i] = v.Properties.Get(key)
			}
			e = e.AppendProps(values...)
		}
		emit(e)
	})
}

// FilterAndProjectEdges is the leaf operator for a simple (1-hop) query
// edge. It emits three-column embeddings [source, edge, target]; undirected
// query edges additionally emit the reversed orientation, and loop query
// edges ((a)-[e]->(a)) emit two columns after checking source = target.
type FilterAndProjectEdges struct {
	In   *dataflow.Dataset[epgm.Edge]
	Edge *cypher.QueryEdge

	meta *embedding.Meta
	loop bool
}

// NewFilterAndProjectEdges builds the leaf and its output metadata.
func NewFilterAndProjectEdges(in *dataflow.Dataset[epgm.Edge], qe *cypher.QueryEdge) *FilterAndProjectEdges {
	meta := embedding.NewMeta()
	loop := qe.Source == qe.Target
	meta.AddEntry(qe.Source, embedding.VertexEntry)
	meta.AddEntry(qe.Var, embedding.EdgeEntry)
	if !loop {
		meta.AddEntry(qe.Target, embedding.VertexEntry)
	}
	for _, key := range qe.Projection {
		meta.AddProp(qe.Var, key)
	}
	return &FilterAndProjectEdges{In: in, Edge: qe, meta: meta, loop: loop}
}

// Meta implements Operator.
func (op *FilterAndProjectEdges) Meta() *embedding.Meta { return op.meta }

// Children implements Operator.
func (op *FilterAndProjectEdges) Children() []Operator { return nil }

// Description implements Operator.
func (op *FilterAndProjectEdges) Description() string {
	dir := "->"
	if op.Edge.Undirected {
		dir = "--"
	}
	return fmt.Sprintf("FilterAndProjectEdges((%s)-[%s%s]%s(%s), preds=%d)",
		op.Edge.Source, op.Edge.Var, labelSuffix(op.Edge.Types), dir, op.Edge.Target, len(op.Edge.Predicates))
}

// Evaluate implements Operator.
func (op *FilterAndProjectEdges) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	return traced(op, op.In.Env(), op.evaluate)
}

func (op *FilterAndProjectEdges) evaluate() *dataflow.Dataset[embedding.Embedding] {
	qe := op.Edge
	loop := op.loop
	return dataflow.FlatMap(op.In, func(de epgm.Edge, emit func(embedding.Embedding)) {
		if !cypher.MatchesLabel(de.Label, qe.Types) {
			return
		}
		if !cypher.EvalElement(qe.Predicates, qe.Var, de.Properties) {
			return
		}
		if loop && de.Source != de.Target {
			return
		}
		build := func(src, tgt epgm.ID) {
			var e embedding.Embedding
			e = e.AppendID(src)
			e = e.AppendID(de.ID)
			if !loop {
				e = e.AppendID(tgt)
			}
			if len(qe.Projection) > 0 {
				values := make([]epgm.PropertyValue, len(qe.Projection))
				for i, key := range qe.Projection {
					values[i] = de.Properties.Get(key)
				}
				e = e.AppendProps(values...)
			}
			emit(e)
		}
		build(de.Source, de.Target)
		if qe.Undirected && de.Source != de.Target {
			build(de.Target, de.Source)
		}
	})
}

func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return ":" + strings.Join(labels, "|")
}
