package operators

import (
	"testing"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// likesGraph: p1 likes m1; p2 likes nothing.
func likesGraph(e *dataflow.Env) (*dataflow.Dataset[epgm.Vertex], *dataflow.Dataset[epgm.Edge], []epgm.ID) {
	p1 := epgm.Vertex{ID: epgm.NewID(), Label: "Person"}
	p2 := epgm.Vertex{ID: epgm.NewID(), Label: "Person"}
	m1 := epgm.Vertex{ID: epgm.NewID(), Label: "Movie",
		Properties: epgm.Properties{}.Set("year", epgm.PVInt(1979))}
	e1 := epgm.Edge{ID: epgm.NewID(), Label: "likes", Source: p1.ID, Target: m1.ID}
	vs := dataflow.FromSlice(e, []epgm.Vertex{p1, p2, m1})
	es := dataflow.FromSlice(e, []epgm.Edge{e1})
	return vs, es, []epgm.ID{p1.ID, p2.ID, m1.ID, e1.ID}
}

func TestOptionalJoinEmbeddingsDirect(t *testing.T) {
	en := env()
	vs, es, ids := likesGraph(en)
	persons := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "p", Labels: []string{"Person"}})
	qe := &cypher.QueryEdge{Var: "e", Types: []string{"likes"}, Source: "p", Target: "m", MinHops: 1, MaxHops: 1}
	likes := NewFilterAndProjectEdges(es, qe)
	opt := NewOptionalJoinEmbeddings(persons, likes, Morphism{}, nil)

	if opt.Meta().Columns() != 3 { // p, e, m
		t.Fatalf("meta: %s", opt.Meta())
	}
	out := opt.Evaluate().Collect()
	if len(out) != 2 {
		t.Fatalf("rows=%d", len(out))
	}
	var matched, nulled int
	for _, emb := range out {
		if emb.IsNullAt(1) {
			nulled++
			if emb.ID(0) != ids[1] {
				t.Fatalf("null row should be p2: %v", emb)
			}
			if !emb.IsNullAt(2) {
				t.Fatal("m should be null too")
			}
		} else {
			matched++
			if emb.ID(0) != ids[0] || emb.ID(1) != ids[3] || emb.ID(2) != ids[2] {
				t.Fatalf("matched row: %v", emb)
			}
		}
	}
	if matched != 1 || nulled != 1 {
		t.Fatalf("matched=%d nulled=%d", matched, nulled)
	}
	if got := opt.Description(); !containsStr(got, "OptionalJoinEmbeddings") {
		t.Fatalf("description: %s", got)
	}
	if len(opt.Children()) != 2 {
		t.Fatal("children")
	}
}

func TestOptionalJoinPredicateTurnsRowNull(t *testing.T) {
	en := env()
	vs, es, _ := likesGraph(en)
	persons := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "p", Labels: []string{"Person"}})
	mleaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "m", Labels: []string{"Movie"}, Projection: []string{"year"}})
	likes := NewFilterAndProjectEdges(es, &cypher.QueryEdge{Var: "e", Types: []string{"likes"}, Source: "p", Target: "m", MinHops: 1, MaxHops: 1})
	sub := NewJoinEmbeddings(mleaf, likes, Morphism{}, dataflow.RepartitionHash)

	// Predicate m.year > 1990 fails for the only movie: every person ends
	// up with a null extension.
	pred, err := cypher.Parse(`MATCH (m) WHERE m.year > 1990 RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptionalJoinEmbeddings(persons, sub, Morphism{}, []cypher.Expr{pred.Where})
	for _, emb := range opt.Evaluate().Collect() {
		mCol, _ := opt.Meta().Column("m")
		if !emb.IsNullAt(mCol) {
			t.Fatalf("expected null extension: %v", emb)
		}
	}
}

func TestSemiAndAntiJoinDirect(t *testing.T) {
	en := env()
	vs, es, ids := likesGraph(en)
	persons := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "p", Labels: []string{"Person"}})
	likes := NewFilterAndProjectEdges(es, &cypher.QueryEdge{Var: "e", Types: []string{"likes"},
		Source: "p", Target: "m", MinHops: 1, MaxHops: 1})

	semi := NewSemiJoinEmbeddings(persons, likes, Morphism{}, false)
	if semi.Meta().Columns() != 1 {
		t.Fatalf("semi meta must be the left meta: %s", semi.Meta())
	}
	out := semi.Evaluate().Collect()
	if len(out) != 1 || out[0].ID(0) != ids[0] {
		t.Fatalf("semi: %v", out)
	}

	anti := NewSemiJoinEmbeddings(persons, likes, Morphism{}, true)
	out = anti.Evaluate().Collect()
	if len(out) != 1 || out[0].ID(0) != ids[1] {
		t.Fatalf("anti: %v", out)
	}
	if !containsStr(anti.Description(), "AntiJoin") || !containsStr(semi.Description(), "SemiJoin") {
		t.Fatal("descriptions")
	}
}

func TestCachedEvaluatesOnce(t *testing.T) {
	en := env()
	vs, _, _ := likesGraph(en)
	leaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "p"})
	cached := NewCached(leaf)
	en.ResetMetrics()
	a := cached.Evaluate()
	first := en.Metrics().TotalCPU
	b := cached.Evaluate()
	if en.Metrics().TotalCPU != first {
		t.Fatal("second evaluation did work")
	}
	if a != b {
		t.Fatal("cached result not shared")
	}
	if cached.Description() != "Cached" || len(cached.Children()) != 1 {
		t.Fatal("cached metadata")
	}
}

func TestFilterEmbeddingsDirect(t *testing.T) {
	en := env()
	vs, _, _ := likesGraph(en)
	leaf := NewFilterAndProjectVertices(vs, &cypher.QueryVertex{Var: "m", Labels: []string{"Movie"}, Projection: []string{"year"}})
	q, err := cypher.Parse(`MATCH (m) WHERE m.year = 1979 RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFilterEmbeddings(leaf, []cypher.Expr{q.Where})
	if got := f.Evaluate().Count(); got != 1 {
		t.Fatalf("filter passed %d", got)
	}
	q2, _ := cypher.Parse(`MATCH (m) WHERE m.year = 1980 RETURN *`)
	f2 := NewFilterEmbeddings(leaf, []cypher.Expr{q2.Where})
	if got := f2.Evaluate().Count(); got != 0 {
		t.Fatalf("filter passed %d", got)
	}
	if !containsStr(f.Description(), "FilterEmbeddings") {
		t.Fatal("description")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
