package operators

import (
	"encoding/binary"
	"fmt"

	"gradoop/internal/epgm"
)

// The operator layer's two internal join-record types cross shuffles inside
// variable-length expansion, so in a distributed job they cross processes:
// both implement the dataflow wire-codec interfaces (value-receiver encode,
// pointer-receiver decode) the remote exchange resolves per element type.

// AppendWire implements dataflow.WireEncoder.
func (t edgeTriple) AppendWire(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.S))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.E))
	return binary.BigEndian.AppendUint64(dst, uint64(t.T))
}

// DecodeWireInto implements dataflow.WireDecoder.
func (t *edgeTriple) DecodeWireInto(b []byte) ([]byte, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("operators: truncated edge triple (%d bytes)", len(b))
	}
	t.S = epgm.ID(binary.BigEndian.Uint64(b))
	t.E = epgm.ID(binary.BigEndian.Uint64(b[8:]))
	t.T = epgm.ID(binary.BigEndian.Uint64(b[16:]))
	return b[24:], nil
}

// AppendWire implements dataflow.WireEncoder.
func (s pathState) AppendWire(dst []byte) []byte {
	dst = s.base.AppendWire(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.via)))
	for _, id := range s.via {
		dst = binary.BigEndian.AppendUint64(dst, uint64(id))
	}
	return binary.BigEndian.AppendUint64(dst, uint64(s.end))
}

// DecodeWireInto implements dataflow.WireDecoder.
func (s *pathState) DecodeWireInto(b []byte) ([]byte, error) {
	rest, err := s.base.DecodeWireInto(b)
	if err != nil {
		return nil, fmt.Errorf("operators: path state base: %w", err)
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("operators: truncated path state via count")
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < 8*n+8 {
		return nil, fmt.Errorf("operators: truncated path state (want %d ids, have %d bytes)", n+1, len(rest))
	}
	s.via = nil
	if n > 0 {
		s.via = make([]epgm.ID, n)
		for i := range s.via {
			s.via[i] = epgm.ID(binary.BigEndian.Uint64(rest))
			rest = rest[8:]
		}
	}
	s.end = epgm.ID(binary.BigEndian.Uint64(rest))
	return rest[8:], nil
}
