package operators

import (
	"fmt"
	"strings"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
)

// FilterEmbeddings evaluates predicates that span multiple query elements
// (e.g. p1.gender <> p2.gender) on complete embeddings.
type FilterEmbeddings struct {
	In         Operator
	Predicates []cypher.Expr
}

// NewFilterEmbeddings wraps in with a selection.
func NewFilterEmbeddings(in Operator, predicates []cypher.Expr) *FilterEmbeddings {
	return &FilterEmbeddings{In: in, Predicates: predicates}
}

// Meta implements Operator.
func (op *FilterEmbeddings) Meta() *embedding.Meta { return op.In.Meta() }

// Children implements Operator.
func (op *FilterEmbeddings) Children() []Operator { return []Operator{op.In} }

// Description implements Operator.
func (op *FilterEmbeddings) Description() string {
	parts := make([]string, len(op.Predicates))
	for i, p := range op.Predicates {
		parts[i] = cypher.ExprString(p)
	}
	return fmt.Sprintf("FilterEmbeddings(%s)", strings.Join(parts, " AND "))
}

// Evaluate implements Operator.
func (op *FilterEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	in := op.In.Evaluate()
	meta := op.In.Meta()
	preds := op.Predicates
	return traced(op, in.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return dataflow.Filter(in, func(e embedding.Embedding) bool {
			lookup := embeddingLookup(e, meta)
			for _, p := range preds {
				if !cypher.EvalPredicate(p, lookup) {
					return false
				}
			}
			return true
		})
	})
}

// ProjectEmbeddings removes columns that are no longer needed downstream:
// it keeps the listed variables' id columns and the listed property
// references, shrinking the bytes shuffled by later operators.
type ProjectEmbeddings struct {
	In        Operator
	KeepVars  []string
	KeepProps []embedding.PropRef

	outputMeta *embedding.Meta
	idCols     []int
	propCols   []int
}

// NewProjectEmbeddings builds a projection. Unknown variables or property
// references are ignored.
func NewProjectEmbeddings(in Operator, keepVars []string, keepProps []embedding.PropRef) *ProjectEmbeddings {
	inMeta := in.Meta()
	outputMeta := embedding.NewMeta()
	var idCols, propCols []int
	for _, v := range keepVars {
		if c, ok := inMeta.Column(v); ok {
			outputMeta.AddEntry(v, inMeta.Kind(c))
			idCols = append(idCols, c)
		}
	}
	for _, ref := range keepProps {
		if c, ok := inMeta.PropColumn(ref.Var, ref.Key); ok {
			outputMeta.AddProp(ref.Var, ref.Key)
			propCols = append(propCols, c)
		}
	}
	return &ProjectEmbeddings{
		In: in, KeepVars: keepVars, KeepProps: keepProps,
		outputMeta: outputMeta, idCols: idCols, propCols: propCols,
	}
}

// Meta implements Operator.
func (op *ProjectEmbeddings) Meta() *embedding.Meta { return op.outputMeta }

// Children implements Operator.
func (op *ProjectEmbeddings) Children() []Operator { return []Operator{op.In} }

// Description implements Operator.
func (op *ProjectEmbeddings) Description() string {
	return fmt.Sprintf("ProjectEmbeddings(keep=%s)", strings.Join(op.KeepVars, ","))
}

// Evaluate implements Operator.
func (op *ProjectEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	in := op.In.Evaluate()
	idCols, propCols := op.idCols, op.propCols
	return traced(op, in.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return dataflow.Map(in, func(e embedding.Embedding) embedding.Embedding {
			return e.Project(idCols, propCols)
		})
	})
}
