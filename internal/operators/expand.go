package operators

import (
	"fmt"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
)

// ExpandEmbeddings evaluates a variable length path expression (§3.1): a
// bulk iteration that grows paths one hop per iteration by joining the
// working set with the edge set, keeps only paths satisfying the morphism
// semantics, and unions iterations ≥ the lower bound into the result. The
// resulting embeddings carry the path as a PATH column (the "via" entries of
// Table 2b) plus, when the far endpoint was not already bound, a new vertex
// column for it.
type ExpandEmbeddings struct {
	In    Operator
	Edges *dataflow.Dataset[epgm.Edge]
	Edge  *cypher.QueryEdge
	Morph Morphism
	// Reverse expands against edge direction: the input binds the query
	// edge's target and paths are grown towards its source.
	Reverse bool

	bindTarget bool
	startCol   int
	endVar     string
	meta       *embedding.Meta
}

// NewExpandEmbeddings builds an expansion of in along qe. The input must
// bind the query edge's source (forward) or target (reverse); if it binds
// both, the expansion closes a cycle and checks the far endpoint instead of
// binding a new column.
func NewExpandEmbeddings(in Operator, edges *dataflow.Dataset[epgm.Edge], qe *cypher.QueryEdge, morph Morphism, reverse bool) (*ExpandEmbeddings, error) {
	inMeta := in.Meta()
	startVar, endVar := qe.Source, qe.Target
	if reverse {
		startVar, endVar = qe.Target, qe.Source
	}
	startCol, ok := inMeta.Column(startVar)
	if !ok {
		return nil, fmt.Errorf("operators: expand input does not bind %q", startVar)
	}
	bindTarget := inMeta.HasVar(endVar)
	meta := inMeta.Clone()
	meta.AddEntry(qe.Var, embedding.PathEntry)
	if !bindTarget {
		meta.AddEntry(endVar, embedding.VertexEntry)
	}
	return &ExpandEmbeddings{
		In: in, Edges: edges, Edge: qe, Morph: morph, Reverse: reverse,
		bindTarget: bindTarget, startCol: startCol, endVar: endVar, meta: meta,
	}, nil
}

// Meta implements Operator.
func (op *ExpandEmbeddings) Meta() *embedding.Meta { return op.meta }

// Children implements Operator.
func (op *ExpandEmbeddings) Children() []Operator { return []Operator{op.In} }

// Description implements Operator.
func (op *ExpandEmbeddings) Description() string {
	dir := "forward"
	if op.Reverse {
		dir = "reverse"
	}
	return fmt.Sprintf("ExpandEmbeddings(%s%s*%d..%d, %s, bindTarget=%v)",
		op.Edge.Var, labelSuffix(op.Edge.Types), op.Edge.MinHops, op.Edge.MaxHops, dir, op.bindTarget)
}

// edgeTriple is the slim edge representation joined against the working set
// each iteration: source, edge and target identifiers only.
type edgeTriple struct {
	S, E, T epgm.ID
}

// SizeBytes implements dataflow.Sized.
func (edgeTriple) SizeBytes() int { return 24 }

// pathState is one partial path of the bulk iteration's working set.
type pathState struct {
	base embedding.Embedding
	via  []epgm.ID // alternating edge and interior-vertex ids (Table 2b)
	end  epgm.ID
}

// SizeBytes implements dataflow.Sized.
func (s pathState) SizeBytes() int { return s.base.SizeBytes() + 8*len(s.via) + 8 }

// Evaluate implements Operator.
func (op *ExpandEmbeddings) Evaluate() *dataflow.Dataset[embedding.Embedding] {
	in := op.In.Evaluate()
	return traced(op, in.Env(), func() *dataflow.Dataset[embedding.Embedding] {
		return op.evaluate(in)
	})
}

func (op *ExpandEmbeddings) evaluate(in *dataflow.Dataset[embedding.Embedding]) *dataflow.Dataset[embedding.Embedding] {
	qe := op.Edge

	// Select the relevant edges once; the iteration reuses the dataset.
	triples := dataflow.FlatMap(op.Edges, func(de epgm.Edge, emit func(edgeTriple)) {
		if !cypher.MatchesLabel(de.Label, qe.Types) {
			return
		}
		if !cypher.EvalElement(qe.Predicates, qe.Var, de.Properties) {
			return
		}
		s, t := de.Source, de.Target
		if op.Reverse {
			s, t = t, s
		}
		emit(edgeTriple{S: s, E: de.ID, T: t})
		if qe.Undirected {
			emit(edgeTriple{S: t, E: de.ID, T: s})
		}
	})

	startCol := op.startCol
	working := dataflow.Map(in, func(e embedding.Embedding) pathState {
		start := e.ID(startCol)
		return pathState{base: e, end: start}
	})

	results := dataflow.Empty[embedding.Embedding](in.Env())
	if qe.MinHops == 0 {
		results = dataflow.Union(results, op.finalize(working))
	}

	env := in.Env()
	// Tag traced stages with their superstep, as BulkIteration does.
	defer env.MarkIteration(0)
	for iter := 1; iter <= qe.MaxHops; iter++ {
		// A failed or cancelled environment drains the working set, so the
		// bulk iteration is abortable between supersteps, not only inside
		// the per-partition join loops. Emptiness is checked globally: a
		// distributed job's workers must agree on the superstep count or the
		// join shuffles inside deadlock on a missing participant.
		if env.Failed() || working.GlobalIsEmpty() {
			break
		}
		env.MarkIteration(iter)
		expanded := dataflow.Join(triples, working,
			func(t edgeTriple) uint64 { return uint64(t.S) },
			func(s pathState) uint64 { return uint64(s.end) },
			func(t edgeTriple, s pathState, emit func(pathState)) {
				if t.S != s.end {
					return
				}
				if !op.hopAllowed(s, t) {
					return
				}
				via := make([]epgm.ID, 0, len(s.via)+2)
				via = append(via, s.via...)
				if len(s.via) > 0 {
					via = append(via, s.end)
				}
				via = append(via, t.E)
				emit(pathState{base: s.base, via: via, end: t.T})
			}, dataflow.RepartitionHash)
		if iter >= qe.MinHops {
			results = dataflow.Union(results, op.finalize(expanded))
		}
		working = expanded
	}
	return results
}

// hopAllowed prunes extensions that can never satisfy the morphism
// semantics: under edge isomorphism the new edge must be fresh; under
// vertex isomorphism a revisited vertex can only ever produce duplicate
// bindings, so the path is dead.
func (op *ExpandEmbeddings) hopAllowed(s pathState, t edgeTriple) bool {
	inMeta := op.In.Meta()
	if op.Morph.Edge == Isomorphism {
		for i := 0; i < len(s.via); i += 2 {
			if s.via[i] == t.E {
				return false
			}
		}
		for _, id := range edgeIDs(s.base, inMeta) {
			if id == t.E {
				return false
			}
		}
	}
	if op.Morph.Vertex == Isomorphism {
		// t.T will become either an interior vertex or the far endpoint; in
		// both cases a duplicate with the path's interior or its start is
		// fatal. Duplicates with other base columns are left to the final
		// morphism check because a bound far endpoint legitimately equals
		// the base's column for that variable.
		if t.T == s.base.ID(op.startCol) {
			return false
		}
		for i := 1; i < len(s.via); i += 2 {
			if s.via[i] == t.T {
				return false
			}
		}
	}
	return true
}

// finalize turns path states of an admissible length into result embeddings
// and applies the full morphism check.
func (op *ExpandEmbeddings) finalize(states *dataflow.Dataset[pathState]) *dataflow.Dataset[embedding.Embedding] {
	meta := op.meta
	morph := op.Morph
	bindTarget := op.bindTarget
	var endCol int
	if bindTarget {
		endCol, _ = op.In.Meta().Column(op.endVar)
	}
	reverse := op.Reverse
	return dataflow.FlatMap(states, func(s pathState, emit func(embedding.Embedding)) {
		if bindTarget && s.base.ID(endCol) != s.end {
			return
		}
		via := s.via
		if reverse && len(via) > 1 {
			// A reverse expansion walked the path from its target; the via
			// entries are stored source-to-target (Table 2b), so flip them.
			flipped := make([]epgm.ID, len(via))
			for i, id := range via {
				flipped[len(via)-1-i] = id
			}
			via = flipped
		}
		e := s.base.AppendPath(via)
		if !bindTarget {
			e = e.AppendID(s.end)
		}
		if ValidMorphism(e, meta, morph) {
			emit(e)
		}
	})
}
