package gdl

import (
	"testing"

	"gradoop/internal/dataflow"
)

// FuzzParse feeds the GDL graph-definition parser arbitrary input: it must
// return an error for malformed text, never panic. (Panics would escape to
// whoever loads a database definition — the CLI and the test harnesses.)
func FuzzParse(f *testing.F) {
	f.Add("g[(a:Person {name: \"Alice\", age: 23})-[:knows {since: 2014}]->(b:Person)]")
	f.Add("(a)-->(b) (b)-->(c)")
	f.Add("g1[(a)] g2[(a)-[e:t]->(b)]")
	f.Add("[")
	f.Fuzz(func(t *testing.T, src string) {
		env := dataflow.NewEnv(dataflow.DefaultConfig(1))
		_, _ = Parse(env, src)
	})
}
