// Package gdl implements a subset of GDL, the Graph Definition Language
// Gradoop uses to declare test and example graphs concisely. A GDL document
// declares logical graphs and their contents:
//
//	community:Community {region: "Leipzig"} [
//	    (alice:Person {name: "Alice", yob: 1984})
//	    (bob:Person {name: "Bob"})
//	    (alice)-[e:knows {since: 2014}]->(bob)
//	    (bob)-[:knows]->(alice)
//	]
//	other [ (alice)-[:follows]->(carl:Person) ]
//
// Variables are shared across the whole document: `alice` above is one
// vertex belonging to both graphs. Paths outside any graph belong only to
// the database. The lexer is shared with the Cypher front-end.
package gdl

import (
	"fmt"
	"strconv"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// Database holds everything a GDL document declared.
type Database struct {
	env *dataflow.Env

	graphOrder []string
	graphs     map[string]*graphDecl
	vertices   map[string]*epgm.Vertex
	edges      []*epgm.Edge
	vertexSeq  []string // declaration order
}

type graphDecl struct {
	head epgm.GraphHead
}

// Parse builds a database from GDL source.
func Parse(env *dataflow.Env, src string) (*Database, error) {
	toks, err := cypher.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("gdl: %w", err)
	}
	p := &parser{
		toks: toks,
		db: &Database{
			env:      env,
			graphs:   map[string]*graphDecl{},
			vertices: map[string]*epgm.Vertex{},
		},
	}
	if err := p.parseDocument(); err != nil {
		return nil, err
	}
	return p.db, nil
}

// Graph materializes one declared logical graph by variable name.
func (d *Database) Graph(name string) (*epgm.LogicalGraph, bool) {
	decl, ok := d.graphs[name]
	if !ok {
		return nil, false
	}
	var vs []epgm.Vertex
	for _, varName := range d.vertexSeq {
		v := d.vertices[varName]
		if v.GraphIDs.Contains(decl.head.ID) {
			vs = append(vs, *v)
		}
	}
	var es []epgm.Edge
	for _, e := range d.edges {
		if e.GraphIDs.Contains(decl.head.ID) {
			es = append(es, *e)
		}
	}
	return epgm.NewLogicalGraph(d.env, decl.head,
		dataflow.FromSlice(d.env, vs), dataflow.FromSlice(d.env, es)), true
}

// GraphNames lists the declared graph variables in order.
func (d *Database) GraphNames() []string { return append([]string(nil), d.graphOrder...) }

// Collection materializes all declared graphs as a collection.
func (d *Database) Collection() *epgm.GraphCollection {
	heads := make([]epgm.GraphHead, 0, len(d.graphOrder))
	for _, name := range d.graphOrder {
		heads = append(heads, d.graphs[name].head)
	}
	return epgm.NewGraphCollection(d.env,
		dataflow.FromSlice(d.env, heads),
		dataflow.FromSlice(d.env, d.allVertices()),
		dataflow.FromSlice(d.env, d.allEdges()))
}

// WholeGraph materializes every declared element as one logical graph,
// regardless of graph membership.
func (d *Database) WholeGraph() *epgm.LogicalGraph {
	head := epgm.GraphHead{ID: epgm.NewID(), Label: "db"}
	return epgm.NewLogicalGraph(d.env, head,
		dataflow.FromSlice(d.env, d.allVertices()),
		dataflow.FromSlice(d.env, d.allEdges()))
}

// Vertex returns a declared vertex by variable name.
func (d *Database) Vertex(name string) (epgm.Vertex, bool) {
	if v, ok := d.vertices[name]; ok {
		return *v, true
	}
	return epgm.Vertex{}, false
}

func (d *Database) allVertices() []epgm.Vertex {
	out := make([]epgm.Vertex, 0, len(d.vertexSeq))
	for _, name := range d.vertexSeq {
		out = append(out, *d.vertices[name])
	}
	return out
}

func (d *Database) allEdges() []epgm.Edge {
	out := make([]epgm.Edge, 0, len(d.edges))
	for _, e := range d.edges {
		out = append(out, *e)
	}
	return out
}

type parser struct {
	toks []Token
	pos  int
	db   *Database
	anon int
}

// Token aliases the cypher token type.
type Token = cypher.Token

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != cypher.TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind cypher.TokenKind) (Token, bool) {
	if p.peek().Kind == kind {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(kind cypher.TokenKind) (Token, error) {
	if t, ok := p.accept(kind); ok {
		return t, nil
	}
	t := p.peek()
	return Token{}, fmt.Errorf("gdl: offset %d: expected %s, found %q", t.Pos, kind, t.Text)
}

func (p *parser) parseDocument() error {
	for {
		switch p.peek().Kind {
		case cypher.TokEOF:
			return nil
		case cypher.TokLParen:
			// Path outside any graph.
			if err := p.parsePath(epgm.NilID); err != nil {
				return err
			}
		case cypher.TokIdent, cypher.TokColon, cypher.TokLBracket:
			if err := p.parseGraph(); err != nil {
				return err
			}
		default:
			t := p.peek()
			return fmt.Errorf("gdl: offset %d: unexpected %q", t.Pos, t.Text)
		}
	}
}

func (p *parser) parseGraph() error {
	name := ""
	if t, ok := p.accept(cypher.TokIdent); ok {
		name = t.Text
	}
	label := ""
	if _, ok := p.accept(cypher.TokColon); ok {
		t, err := p.expect(cypher.TokIdent)
		if err != nil {
			return err
		}
		label = t.Text
	}
	props, err := p.parseOptionalProps()
	if err != nil {
		return err
	}
	if name == "" {
		name = fmt.Sprintf("__g%d", p.anon)
		p.anon++
	}
	decl, ok := p.db.graphs[name]
	if !ok {
		decl = &graphDecl{head: epgm.GraphHead{ID: epgm.NewID(), Label: label, Properties: props}}
		p.db.graphs[name] = decl
		p.db.graphOrder = append(p.db.graphOrder, name)
	} else {
		if label != "" {
			decl.head.Label = label
		}
		for _, kv := range props {
			decl.head.Properties = decl.head.Properties.Set(kv.Key, kv.Value)
		}
	}
	if _, err := p.expect(cypher.TokLBracket); err != nil {
		return err
	}
	for {
		if _, ok := p.accept(cypher.TokRBracket); ok {
			return nil
		}
		if err := p.parsePath(decl.head.ID); err != nil {
			return err
		}
	}
}

// parsePath parses `(a)-[e]->(b)<-[f]-(c)...`, attaching elements to graph
// (NilID = database only).
func (p *parser) parsePath(graph epgm.ID) error {
	prev, err := p.parseVertex(graph)
	if err != nil {
		return err
	}
	for {
		var incoming bool
		switch p.peek().Kind {
		case cypher.TokDash:
			incoming = false
		case cypher.TokLT:
			incoming = true
		default:
			return nil
		}
		edge, err := p.parseEdge(graph)
		if err != nil {
			return err
		}
		next, err := p.parseVertex(graph)
		if err != nil {
			return err
		}
		if incoming {
			edge.Source, edge.Target = next.ID, prev.ID
		} else {
			edge.Source, edge.Target = prev.ID, next.ID
		}
		prev = next
	}
}

func (p *parser) parseVertex(graph epgm.ID) (*epgm.Vertex, error) {
	if _, err := p.expect(cypher.TokLParen); err != nil {
		return nil, err
	}
	name := ""
	if t, ok := p.accept(cypher.TokIdent); ok {
		name = t.Text
	}
	label := ""
	if _, ok := p.accept(cypher.TokColon); ok {
		t, err := p.expect(cypher.TokIdent)
		if err != nil {
			return nil, err
		}
		label = t.Text
	}
	props, err := p.parseOptionalProps()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(cypher.TokRParen); err != nil {
		return nil, err
	}
	if name == "" {
		name = fmt.Sprintf("__v%d", p.anon)
		p.anon++
	}
	v, ok := p.db.vertices[name]
	if !ok {
		v = &epgm.Vertex{ID: epgm.NewID()}
		p.db.vertices[name] = v
		p.db.vertexSeq = append(p.db.vertexSeq, name)
	}
	if label != "" {
		v.Label = label
	}
	for _, kv := range props {
		v.Properties = v.Properties.Set(kv.Key, kv.Value)
	}
	if graph != epgm.NilID {
		v.GraphIDs = v.GraphIDs.Add(graph)
	}
	return v, nil
}

// parseEdge parses `-[e:label {...}]->` or `<-[...]-` (the caller has
// peeked the direction token) and returns the new edge with endpoints
// unset.
func (p *parser) parseEdge(graph epgm.ID) (*epgm.Edge, error) {
	incoming := false
	if _, ok := p.accept(cypher.TokLT); ok {
		incoming = true
	}
	if _, err := p.expect(cypher.TokDash); err != nil {
		return nil, err
	}
	label := ""
	if _, ok := p.accept(cypher.TokLBracket); ok {
		if _, ok := p.accept(cypher.TokIdent); ok {
			// Edge variables are accepted but, unlike vertex variables, each
			// mention creates a distinct edge (matching GDL's semantics for
			// repeated parallel edges in fixtures).
			_ = ok
		}
		if _, ok := p.accept(cypher.TokColon); ok {
			t, err := p.expect(cypher.TokIdent)
			if err != nil {
				return nil, err
			}
			label = t.Text
		}
		props, err := p.parseOptionalProps()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(cypher.TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(cypher.TokDash); err != nil {
			return nil, err
		}
		if !incoming {
			if _, err := p.expect(cypher.TokGT); err != nil {
				return nil, err
			}
		}
		e := &epgm.Edge{ID: epgm.NewID(), Label: label, Properties: props}
		if graph != epgm.NilID {
			e.GraphIDs = e.GraphIDs.Add(graph)
		}
		p.db.edges = append(p.db.edges, e)
		return e, nil
	}
	// Abbreviated edge: --> or <--.
	if _, err := p.expect(cypher.TokDash); err != nil {
		return nil, err
	}
	if !incoming {
		if _, err := p.expect(cypher.TokGT); err != nil {
			return nil, err
		}
	}
	e := &epgm.Edge{ID: epgm.NewID()}
	if graph != epgm.NilID {
		e.GraphIDs = e.GraphIDs.Add(graph)
	}
	p.db.edges = append(p.db.edges, e)
	return e, nil
}

func (p *parser) parseOptionalProps() (epgm.Properties, error) {
	if p.peek().Kind != cypher.TokLBrace {
		return nil, nil
	}
	p.advance()
	var props epgm.Properties
	if _, ok := p.accept(cypher.TokRBrace); ok {
		return props, nil
	}
	for {
		key, err := p.expect(cypher.TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(cypher.TokColon); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		props = props.Set(key.Text, val)
		if _, ok := p.accept(cypher.TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(cypher.TokRBrace); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *parser) parseLiteral() (epgm.PropertyValue, error) {
	neg := false
	if _, ok := p.accept(cypher.TokDash); ok {
		neg = true
	}
	t := p.advance()
	switch t.Kind {
	case cypher.TokString:
		if neg {
			return epgm.Null, fmt.Errorf("gdl: offset %d: cannot negate a string", t.Pos)
		}
		return epgm.PVString(t.Text), nil
	case cypher.TokInt:
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return epgm.Null, fmt.Errorf("gdl: offset %d: bad integer %q", t.Pos, t.Text)
		}
		if neg {
			n = -n
		}
		return epgm.PVInt(n), nil
	case cypher.TokFloat:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return epgm.Null, fmt.Errorf("gdl: offset %d: bad float %q", t.Pos, t.Text)
		}
		if neg {
			f = -f
		}
		return epgm.PVFloat(f), nil
	case cypher.TokTrue:
		return epgm.PVBool(true), nil
	case cypher.TokFalse:
		return epgm.PVBool(false), nil
	case cypher.TokNull:
		return epgm.Null, nil
	default:
		return epgm.Null, fmt.Errorf("gdl: offset %d: expected literal, found %q", t.Pos, t.Text)
	}
}
