package gdl

import (
	"testing"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
)

func env() *dataflow.Env { return dataflow.NewEnv(dataflow.DefaultConfig(2)) }

const fixture = `
community:Community {region: "Leipzig"} [
    (alice:Person {name: "Alice", yob: 1984, score: 1.5, active: true})
    (bob:Person {name: "Bob"})
    (alice)-[:knows {since: 2014}]->(bob)
    (bob)-[:knows]->(alice)
]
other [ (alice)-[:follows]->(carl:Person {name: "Carl"}) ]
(dave:Person)-->(alice)
`

func TestParseFixture(t *testing.T) {
	db, err := Parse(env(), fixture)
	if err != nil {
		t.Fatal(err)
	}
	names := db.GraphNames()
	if len(names) != 2 || names[0] != "community" || names[1] != "other" {
		t.Fatalf("graphs: %v", names)
	}

	g, ok := db.Graph("community")
	if !ok {
		t.Fatal("community missing")
	}
	if g.Head.Label != "Community" || g.Head.Properties.Get("region").Str() != "Leipzig" {
		t.Fatalf("head: %+v", g.Head)
	}
	if g.VertexCount() != 2 || g.EdgeCount() != 2 {
		t.Fatalf("community: %d vertices %d edges", g.VertexCount(), g.EdgeCount())
	}

	alice, ok := db.Vertex("alice")
	if !ok {
		t.Fatal("alice missing")
	}
	if alice.Label != "Person" || alice.Properties.Get("yob").Int() != 1984 ||
		alice.Properties.Get("score").Float() != 1.5 || !alice.Properties.Get("active").Bool() {
		t.Fatalf("alice: %+v", alice)
	}

	// alice is shared between community and other.
	other, _ := db.Graph("other")
	if other.VertexCount() != 2 {
		t.Fatalf("other vertices: %d", other.VertexCount())
	}

	// The whole database has 4 vertices (alice, bob, carl, dave) and 4
	// edges (2 knows, follows, anonymous).
	whole := db.WholeGraph()
	if whole.VertexCount() != 4 || whole.EdgeCount() != 4 {
		t.Fatalf("whole: %d vertices %d edges", whole.VertexCount(), whole.EdgeCount())
	}
}

func TestCollection(t *testing.T) {
	db, err := Parse(env(), fixture)
	if err != nil {
		t.Fatal(err)
	}
	coll := db.Collection()
	if coll.GraphCount() != 2 {
		t.Fatalf("collection graphs: %d", coll.GraphCount())
	}
	// dave belongs to no declared graph, so he is absent from the
	// collection's membership-stamped elements... the collection still
	// carries him in the shared dataset, but he is a member of neither
	// graph.
	for _, name := range db.GraphNames() {
		g, _ := db.Graph(name)
		for _, v := range g.Vertices.Collect() {
			if v.Properties.Get("name").IsNull() && v.Label == "Person" && name == "community" {
				t.Fatalf("dave leaked into %s", name)
			}
		}
	}
}

func TestIncomingEdgeAndNegativeLiteral(t *testing.T) {
	db, err := Parse(env(), `g [ (a {t: -5})<-[:x {w: -1.5}]-(b) ]`)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := db.Graph("g")
	edges := g.Edges.Collect()
	if len(edges) != 1 {
		t.Fatalf("edges: %d", len(edges))
	}
	a, _ := db.Vertex("a")
	b, _ := db.Vertex("b")
	if edges[0].Source != b.ID || edges[0].Target != a.ID {
		t.Fatal("incoming edge direction")
	}
	if a.Properties.Get("t").Int() != -5 || edges[0].Properties.Get("w").Float() != -1.5 {
		t.Fatal("negative literals")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`g [ (a`,
		`g [ (a) -`,
		`g [ (a)-[ ->(b) ]`,
		`g [ (a {x}) ]`,
		`g [ (a {x: }) ]`,
		`]`,
		`g [ (a {s: -"x"}) ]`,
	} {
		if _, err := Parse(env(), src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestGDLGraphIsQueryable(t *testing.T) {
	db, err := Parse(env(), fixture)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := db.Graph("community")
	res, err := core.Execute(g, `MATCH (a:Person)-[:knows]->(b:Person) WHERE a.name = 'Alice' RETURN b.name`, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0].Values[0].Str() != "Bob" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestAnonymousGraph(t *testing.T) {
	db, err := Parse(env(), `[ (x)-->(y) ] [ (y)-->(z) ]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.GraphNames()) != 2 {
		t.Fatalf("graphs: %v", db.GraphNames())
	}
	g, ok := db.Graph(db.GraphNames()[0])
	if !ok || g.VertexCount() != 2 {
		t.Fatal("anonymous graph content")
	}
	// y is shared.
	if _, ok := db.Vertex("y"); !ok {
		t.Fatal("y missing")
	}
	whole := db.WholeGraph()
	if whole.VertexCount() != 3 {
		t.Fatalf("whole vertices: %d", whole.VertexCount())
	}
}
