package algorithms

import (
	"math"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// twoIslands: component A = chain v0->v1->v2 plus cycle back, component B =
// pair v3->v4. v5 is isolated.
func twoIslands(workers int) (*epgm.LogicalGraph, []epgm.ID) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	vs := make([]epgm.Vertex, 6)
	ids := make([]epgm.ID, 6)
	for i := range vs {
		vs[i] = epgm.Vertex{ID: epgm.NewID(), Label: "V"}
		ids[i] = vs[i].ID
	}
	e := func(s, t int, w float64) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: "e", Source: ids[s], Target: ids[t],
			Properties: epgm.Properties{}.Set("weight", epgm.PVFloat(w))}
	}
	edges := []epgm.Edge{
		e(0, 1, 1), e(1, 2, 2), e(2, 0, 1),
		e(3, 4, 5),
	}
	return epgm.GraphFromSlices(env, "G", vs, edges), ids
}

func componentOf(t *testing.T, g *epgm.LogicalGraph, id epgm.ID) int64 {
	t.Helper()
	for _, v := range g.Vertices.Collect() {
		if v.ID == id {
			return v.Properties.Get(ComponentPropertyKey).Int()
		}
	}
	t.Fatalf("vertex %d not found", id)
	return 0
}

func TestWeaklyConnectedComponents(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g, ids := twoIslands(workers)
		out := WeaklyConnectedComponents(g, 10)
		compA := componentOf(t, out, ids[0])
		if componentOf(t, out, ids[1]) != compA || componentOf(t, out, ids[2]) != compA {
			t.Fatalf("workers=%d: island A split", workers)
		}
		compB := componentOf(t, out, ids[3])
		if componentOf(t, out, ids[4]) != compB {
			t.Fatalf("workers=%d: island B split", workers)
		}
		if compA == compB {
			t.Fatalf("workers=%d: islands merged", workers)
		}
		iso := componentOf(t, out, ids[5])
		if iso == compA || iso == compB {
			t.Fatalf("workers=%d: isolated vertex joined an island", workers)
		}
		// Component id is the minimum member id.
		if compA != int64(ids[0]) {
			t.Fatalf("component id %d, want min member %d", compA, ids[0])
		}
	}
}

func TestPageRankSumsToOneAndRanksHubs(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	// Star: everyone links to the hub.
	hub := epgm.Vertex{ID: epgm.NewID(), Label: "V"}
	spokes := make([]epgm.Vertex, 5)
	vertices := []epgm.Vertex{hub}
	var edges []epgm.Edge
	for i := range spokes {
		spokes[i] = epgm.Vertex{ID: epgm.NewID(), Label: "V"}
		vertices = append(vertices, spokes[i])
		edges = append(edges, epgm.Edge{ID: epgm.NewID(), Label: "e", Source: spokes[i].ID, Target: hub.ID})
	}
	g := epgm.GraphFromSlices(env, "Star", vertices, edges)
	out := PageRank(g, 0.85, 30)

	var sum, hubScore float64
	var spokeScore float64
	for _, v := range out.Vertices.Collect() {
		s := v.Properties.Get(PageRankPropertyKey).Float()
		sum += s
		if v.ID == hub.ID {
			hubScore = s
		} else {
			spokeScore = s
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %f, want 1", sum)
	}
	if hubScore <= 2*spokeScore {
		t.Fatalf("hub=%f spoke=%f: hub should dominate", hubScore, spokeScore)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	n := 4
	vs := make([]epgm.Vertex, n)
	for i := range vs {
		vs[i] = epgm.Vertex{ID: epgm.NewID(), Label: "V"}
	}
	var edges []epgm.Edge
	for i := range vs {
		edges = append(edges, epgm.Edge{ID: epgm.NewID(), Label: "e",
			Source: vs[i].ID, Target: vs[(i+1)%n].ID})
	}
	g := epgm.GraphFromSlices(env, "Cycle", vs, edges)
	out := PageRank(g, 0.85, 20)
	for _, v := range out.Vertices.Collect() {
		if s := v.Properties.Get(PageRankPropertyKey).Float(); math.Abs(s-0.25) > 1e-9 {
			t.Fatalf("cycle rank %f, want 0.25", s)
		}
	}
}

func TestSSSP(t *testing.T) {
	g, ids := twoIslands(3)
	out := SingleSourceShortestPaths(g, ids[0], "weight", 10)
	dist := map[epgm.ID]epgm.PropertyValue{}
	for _, v := range out.Vertices.Collect() {
		dist[v.ID] = v.Properties.Get(SSSPPropertyKey)
	}
	if dist[ids[0]].Float() != 0 {
		t.Fatalf("source distance %v", dist[ids[0]])
	}
	if dist[ids[1]].Float() != 1 || dist[ids[2]].Float() != 3 {
		t.Fatalf("distances: v1=%v v2=%v", dist[ids[1]], dist[ids[2]])
	}
	// Unreachable vertices carry no property.
	if !dist[ids[3]].IsNull() || !dist[ids[5]].IsNull() {
		t.Fatalf("unreachable vertices annotated: %v %v", dist[ids[3]], dist[ids[5]])
	}
}

func TestSSSPUnweightedDefaultsToHops(t *testing.T) {
	g, ids := twoIslands(2)
	out := SingleSourceShortestPaths(g, ids[0], "", 10)
	for _, v := range out.Vertices.Collect() {
		if v.ID == ids[2] {
			if got := v.Properties.Get(SSSPPropertyKey).Float(); got != 2 {
				t.Fatalf("hop distance %f, want 2", got)
			}
		}
	}
}

func TestAlgorithmsDoNotMutateInput(t *testing.T) {
	g, _ := twoIslands(2)
	WeaklyConnectedComponents(g, 5)
	PageRank(g, 0.85, 3)
	for _, v := range g.Vertices.Collect() {
		if v.Properties.Has(ComponentPropertyKey) || v.Properties.Has(PageRankPropertyKey) {
			t.Fatal("input graph mutated")
		}
	}
}
