// Package algorithms implements iterative graph algorithms on the dataflow
// substrate — the role Gradoop delegates to Flink Gelly. Each algorithm is
// an EPGM-style operator: it consumes a logical graph and produces a new
// logical graph whose vertices carry the result as a property, so
// algorithms compose with pattern matching and the other analytical
// operators. All iteration happens through dataset transformations
// (joins, reduces, unions), so the cost model meters algorithms exactly
// like queries.
package algorithms

import (
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// ComponentPropertyKey is the vertex property written by
// WeaklyConnectedComponents.
const ComponentPropertyKey = "component"

// WeaklyConnectedComponents annotates every vertex with the smallest vertex
// id reachable over edges in either direction (min-id label propagation).
// maxIterations bounds the propagation rounds; the diameter of the graph
// suffices for exact results.
func WeaklyConnectedComponents(g *epgm.LogicalGraph, maxIterations int) *epgm.LogicalGraph {
	type label struct {
		V, Comp epgm.ID
	}
	labels := dataflow.Map(g.Vertices, func(v epgm.Vertex) label {
		return label{V: v.ID, Comp: v.ID}
	})
	// Undirected neighbor pairs.
	neighbors := dataflow.FlatMap(g.Edges, func(e epgm.Edge, emit func([2]epgm.ID)) {
		emit([2]epgm.ID{e.Source, e.Target})
		emit([2]epgm.ID{e.Target, e.Source})
	})

	for iter := 0; iter < maxIterations; iter++ {
		// Send each vertex's current component to its neighbors.
		messages := dataflow.Join(labels, neighbors,
			func(l label) uint64 { return uint64(l.V) },
			func(p [2]epgm.ID) uint64 { return uint64(p[0]) },
			func(l label, p [2]epgm.ID, emit func(label)) {
				emit(label{V: p[1], Comp: l.Comp})
			}, dataflow.RepartitionHash)
		// Keep the minimum of the incoming components and the own label.
		candidates := dataflow.Union(labels, messages)
		next := dataflow.Map(
			dataflow.ReduceByKey(candidates,
				func(l label) epgm.ID { return l.V },
				func(a, b label) label {
					if b.Comp < a.Comp {
						return b
					}
					return a
				}),
			func(kv dataflow.KV[epgm.ID, label]) label { return kv.Value })
		// Converged when no label shrank.
		changed := dataflow.Join(labels, next,
			func(l label) uint64 { return uint64(l.V) },
			func(l label) uint64 { return uint64(l.V) },
			func(old, new label, emit func(struct{})) {
				if old.V == new.V && new.Comp < old.Comp {
					emit(struct{}{})
				}
			}, dataflow.RepartitionHash)
		labels = next
		if changed.IsEmpty() {
			break
		}
	}
	return annotate(g, "WCC", ComponentPropertyKey, dataflow.Map(labels, func(l label) dataflow.KV[epgm.ID, epgm.PropertyValue] {
		return dataflow.KV[epgm.ID, epgm.PropertyValue]{Key: l.V, Value: epgm.PVInt(int64(l.Comp))}
	}))
}

// PageRankPropertyKey is the vertex property written by PageRank.
const PageRankPropertyKey = "pagerank"

// PageRank annotates every vertex with its PageRank score after a fixed
// number of synchronous iterations with the given damping factor
// (typically 0.85). Dangling vertices redistribute their mass uniformly.
func PageRank(g *epgm.LogicalGraph, damping float64, iterations int) *epgm.LogicalGraph {
	n := float64(g.VertexCount())
	if n == 0 {
		return g
	}
	type rank struct {
		V     epgm.ID
		Score float64
	}
	type outDeg struct {
		V   epgm.ID
		Deg int64
	}
	degrees := dataflow.Map(
		dataflow.CountByKey(g.Edges, func(e epgm.Edge) epgm.ID { return e.Source }),
		func(kv dataflow.KV[epgm.ID, int64]) outDeg { return outDeg{V: kv.Key, Deg: kv.Value} })

	ranks := dataflow.Map(g.Vertices, func(v epgm.Vertex) rank {
		return rank{V: v.ID, Score: 1 / n}
	})
	vertexIDs := dataflow.Map(g.Vertices, func(v epgm.Vertex) epgm.ID { return v.ID })
	hasOut := map[epgm.ID]bool{}
	for _, d := range degrees.Collect() {
		hasOut[d.V] = true
	}

	for iter := 0; iter < iterations; iter++ {
		// Per-source contribution = score / outDegree.
		withDeg := dataflow.Join(degrees, ranks,
			func(d outDeg) uint64 { return uint64(d.V) },
			func(r rank) uint64 { return uint64(r.V) },
			func(d outDeg, r rank, emit func(rank)) {
				emit(rank{V: r.V, Score: r.Score / float64(d.Deg)})
			}, dataflow.RepartitionHash)
		contributions := dataflow.Join(withDeg, g.Edges,
			func(r rank) uint64 { return uint64(r.V) },
			func(e epgm.Edge) uint64 { return uint64(e.Source) },
			func(r rank, e epgm.Edge, emit func(rank)) {
				emit(rank{V: e.Target, Score: r.Score})
			}, dataflow.RepartitionHash)
		// Dangling mass: total score of vertices without out-edges,
		// computed on the driver like a Flink aggregator.
		var danglingMass float64
		for _, r := range ranks.Collect() {
			if !hasOut[r.V] {
				danglingMass += r.Score
			}
		}
		base := (1 - damping) / n
		redistribution := damping * danglingMass / n
		summed := dataflow.ReduceByKey(contributions,
			func(r rank) epgm.ID { return r.V },
			func(a, b rank) rank { return rank{V: a.V, Score: a.Score + b.Score} })
		received := dataflow.Map(summed, func(kv dataflow.KV[epgm.ID, rank]) rank { return kv.Value })
		// Vertices with no inbound contributions still get the base rank.
		all := dataflow.Union(received,
			dataflow.Map(vertexIDs, func(id epgm.ID) rank { return rank{V: id, Score: 0} }))
		total := dataflow.ReduceByKey(all,
			func(r rank) epgm.ID { return r.V },
			func(a, b rank) rank { return rank{V: a.V, Score: a.Score + b.Score} })
		ranks = dataflow.Map(total, func(kv dataflow.KV[epgm.ID, rank]) rank {
			return rank{V: kv.Value.V, Score: base + redistribution + damping*kv.Value.Score}
		})
	}
	return annotate(g, "PageRank", PageRankPropertyKey, dataflow.Map(ranks, func(r rank) dataflow.KV[epgm.ID, epgm.PropertyValue] {
		return dataflow.KV[epgm.ID, epgm.PropertyValue]{Key: r.V, Value: epgm.PVFloat(r.Score)}
	}))
}

// SSSPPropertyKey is the vertex property written by
// SingleSourceShortestPaths.
const SSSPPropertyKey = "sssp"

// SingleSourceShortestPaths annotates every vertex with its shortest-path
// distance from source, following edge direction. Edge weights are read
// from weightKey (missing or non-positive weights count as 1); vertices
// unreachable from the source carry no property. maxIterations bounds the
// relaxation rounds.
func SingleSourceShortestPaths(g *epgm.LogicalGraph, source epgm.ID, weightKey string, maxIterations int) *epgm.LogicalGraph {
	type dist struct {
		V epgm.ID
		D float64
	}
	type wedge struct {
		S, T epgm.ID
		W    float64
	}
	weighted := dataflow.Map(g.Edges, func(e epgm.Edge) wedge {
		w := 1.0
		if weightKey != "" {
			if pv := e.Properties.Get(weightKey); !pv.IsNull() && pv.Float() > 0 {
				w = pv.Float()
			}
		}
		return wedge{S: e.Source, T: e.Target, W: w}
	})
	dists := dataflow.FlatMap(g.Vertices, func(v epgm.Vertex, emit func(dist)) {
		if v.ID == source {
			emit(dist{V: v.ID, D: 0})
		}
	})
	frontier := dists
	for iter := 0; iter < maxIterations; iter++ {
		if frontier.IsEmpty() {
			break
		}
		relaxed := dataflow.Join(frontier, weighted,
			func(d dist) uint64 { return uint64(d.V) },
			func(e wedge) uint64 { return uint64(e.S) },
			func(d dist, e wedge, emit func(dist)) {
				emit(dist{V: e.T, D: d.D + e.W})
			}, dataflow.RepartitionHash)
		candidates := dataflow.Union(dists, relaxed)
		next := dataflow.Map(
			dataflow.ReduceByKey(candidates,
				func(d dist) epgm.ID { return d.V },
				func(a, b dist) dist {
					if b.D < a.D {
						return b
					}
					return a
				}),
			func(kv dataflow.KV[epgm.ID, dist]) dist { return kv.Value })
		// The next frontier holds vertices whose distance improved.
		old := map[epgm.ID]float64{}
		for _, d := range dists.Collect() {
			old[d.V] = d.D
		}
		frontier = dataflow.Filter(next, func(d dist) bool {
			prev, ok := old[d.V]
			return !ok || d.D < prev-1e-12
		})
		dists = next
	}
	return annotate(g, "SSSP", SSSPPropertyKey, dataflow.Map(dists, func(d dist) dataflow.KV[epgm.ID, epgm.PropertyValue] {
		return dataflow.KV[epgm.ID, epgm.PropertyValue]{Key: d.V, Value: epgm.PVFloat(d.D)}
	}))
}

// annotate joins per-vertex values onto the graph's vertices as a property,
// producing a new logical graph. Vertices without a value stay unchanged.
func annotate(g *epgm.LogicalGraph, opName, key string, values *dataflow.Dataset[dataflow.KV[epgm.ID, epgm.PropertyValue]]) *epgm.LogicalGraph {
	head := epgm.GraphHead{ID: epgm.NewID(), Label: g.Head.Label,
		Properties: g.Head.Properties.Clone().Set("algorithm", epgm.PVString(opName))}
	byID := map[epgm.ID]epgm.PropertyValue{}
	for _, kv := range values.Collect() {
		byID[kv.Key] = kv.Value
	}
	vs := dataflow.Map(g.Vertices, func(v epgm.Vertex) epgm.Vertex {
		if pv, ok := byID[v.ID]; ok {
			v.Properties = v.Properties.Clone().Set(key, pv)
		}
		v.GraphIDs = v.GraphIDs.Clone().Add(head.ID)
		return v
	})
	es := dataflow.Map(g.Edges, func(e epgm.Edge) epgm.Edge {
		e.GraphIDs = e.GraphIDs.Clone().Add(head.ID)
		return e
	})
	return epgm.NewLogicalGraph(g.Env(), head, vs, es)
}
