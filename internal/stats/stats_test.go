package stats

import (
	"strings"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

func testGraph(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	var vertices []epgm.Vertex
	mk := func(label, name string) epgm.Vertex {
		v := epgm.Vertex{ID: epgm.NewID(), Label: label,
			Properties: epgm.Properties{}.Set("name", epgm.PVString(name))}
		vertices = append(vertices, v)
		return v
	}
	p1 := mk("Person", "a")
	p2 := mk("Person", "b")
	p3 := mk("Person", "a") // duplicate name value
	t1 := mk("Tag", "x")
	e := func(label string, s, d epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: label, Source: s.ID, Target: d.ID,
			Properties: epgm.Properties{}.Set("w", epgm.PVInt(1))}
	}
	edges := []epgm.Edge{
		e("knows", p1, p2), e("knows", p1, p3), e("knows", p2, p3),
		e("hasInterest", p1, t1),
	}
	return epgm.GraphFromSlices(env, "G", vertices, edges)
}

func TestCollectCounts(t *testing.T) {
	s := Collect(testGraph(3))
	if s.VertexCount != 4 || s.EdgeCount != 4 {
		t.Fatalf("counts: %d/%d", s.VertexCount, s.EdgeCount)
	}
	if s.VertexCountByLabel["Person"] != 3 || s.VertexCountByLabel["Tag"] != 1 {
		t.Fatalf("labels: %v", s.VertexCountByLabel)
	}
	if s.EdgeCountByLabel["knows"] != 3 || s.EdgeCountByLabel["hasInterest"] != 1 {
		t.Fatalf("edge labels: %v", s.EdgeCountByLabel)
	}
}

func TestCollectDistinctEndpoints(t *testing.T) {
	s := Collect(testGraph(2))
	// Sources: p1 (x3), p2 => 2 distinct overall; knows sources: p1,p2 = 2.
	if s.DistinctSourceIDs != 2 {
		t.Fatalf("distinct sources=%d", s.DistinctSourceIDs)
	}
	if s.DistinctSourceIDsByLabel["knows"] != 2 {
		t.Fatalf("knows sources=%d", s.DistinctSourceIDsByLabel["knows"])
	}
	// Targets: p2, p3, t1 = 3.
	if s.DistinctTargetIDs != 3 {
		t.Fatalf("distinct targets=%d", s.DistinctTargetIDs)
	}
	if s.DistinctTargetIDsByLabel["hasInterest"] != 1 {
		t.Fatalf("hasInterest targets=%d", s.DistinctTargetIDsByLabel["hasInterest"])
	}
}

func TestCollectDistinctProperties(t *testing.T) {
	s := Collect(testGraph(2))
	// Person.name takes values {a, b} => 2 distinct.
	if got := s.DistinctVertexPropertyValues([]string{"Person"}, "name"); got != 2 {
		t.Fatalf("Person.name distinct=%d", got)
	}
	// Across labels: {a, b, x} = 3.
	if got := s.DistinctVertexPropertyValues(nil, "name"); got != 3 {
		t.Fatalf("name distinct=%d", got)
	}
	// Unknown key falls back to the default guess.
	if got := s.DistinctVertexPropertyValues([]string{"Person"}, "zzz"); got != 10 {
		t.Fatalf("fallback=%d", got)
	}
	if got := s.DistinctEdgePropertyValues([]string{"knows"}, "w"); got != 1 {
		t.Fatalf("knows.w distinct=%d", got)
	}
}

func TestCardinalityHelpers(t *testing.T) {
	s := Collect(testGraph(2))
	if s.VertexCardinality(nil) != 4 {
		t.Fatal("all vertices")
	}
	if s.VertexCardinality([]string{"Person", "Tag"}) != 4 {
		t.Fatal("alternation")
	}
	if s.EdgeCardinality([]string{"knows"}) != 3 {
		t.Fatal("knows cardinality")
	}
	if s.EdgeCardinality([]string{"nope"}) != 0 {
		t.Fatal("unknown label")
	}
	// knows: 3 edges / 2 distinct sources = 1.5.
	if got := s.AverageOutDegree([]string{"knows"}); got != 1.5 {
		t.Fatalf("avg out degree=%f", got)
	}
	if got := s.AverageOutDegree([]string{"nope"}); got != 0 {
		t.Fatalf("unknown degree=%f", got)
	}
}

func TestStatsDeterministicAcrossWorkers(t *testing.T) {
	a := Collect(testGraph(1))
	b := Collect(testGraph(8))
	if a.VertexCount != b.VertexCount || a.DistinctSourceIDs != b.DistinctSourceIDs {
		t.Fatal("worker count changed statistics")
	}
	if a.DistinctVertexPropertyValues([]string{"Person"}, "name") != b.DistinctVertexPropertyValues([]string{"Person"}, "name") {
		t.Fatal("distinct props differ")
	}
}

func TestStatsString(t *testing.T) {
	s := Collect(testGraph(1))
	out := s.String()
	for _, frag := range []string{"vertices=4", "Person=3", "knows=3"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in %q", frag, out)
		}
	}
}
