// Package stats computes the pre-computed graph statistics the greedy query
// planner uses for cardinality estimation (§3.2): total vertex and edge
// counts, label distributions, distinct source/target vertex counts overall
// and per edge label, and distinct property-value counts for selectivity
// estimation of property predicates.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// GraphStatistics summarizes a data graph for the planner.
type GraphStatistics struct {
	VertexCount int64
	EdgeCount   int64

	VertexCountByLabel map[string]int64
	EdgeCountByLabel   map[string]int64

	DistinctSourceIDs int64
	DistinctTargetIDs int64

	DistinctSourceIDsByLabel map[string]int64
	DistinctTargetIDsByLabel map[string]int64

	// DistinctVertexProperties maps "label\x00key" to the number of distinct
	// values that property takes on vertices of that label; the empty label
	// aggregates across labels. Used to estimate equality selectivity.
	DistinctVertexProperties map[string]int64
	// DistinctEdgeProperties is the edge-side analogue.
	DistinctEdgeProperties map[string]int64
}

// PropKey builds the lookup key of the distinct-property tables.
func PropKey(label, key string) string { return label + "\x00" + key }

// Collect computes statistics with dataflow aggregations over the graph.
func Collect(g *epgm.LogicalGraph) *GraphStatistics {
	s := &GraphStatistics{
		VertexCountByLabel:       map[string]int64{},
		EdgeCountByLabel:         map[string]int64{},
		DistinctSourceIDsByLabel: map[string]int64{},
		DistinctTargetIDsByLabel: map[string]int64{},
		DistinctVertexProperties: map[string]int64{},
		DistinctEdgeProperties:   map[string]int64{},
	}

	s.VertexCount = g.VertexCount()
	s.EdgeCount = g.EdgeCount()

	for _, kv := range dataflow.CountByKey(g.Vertices, func(v epgm.Vertex) string { return v.Label }).Collect() {
		s.VertexCountByLabel[kv.Key] = kv.Value
	}
	for _, kv := range dataflow.CountByKey(g.Edges, func(e epgm.Edge) string { return e.Label }).Collect() {
		s.EdgeCountByLabel[kv.Key] = kv.Value
	}

	s.DistinctSourceIDs = dataflow.Distinct(dataflow.Map(g.Edges, func(e epgm.Edge) epgm.ID { return e.Source })).Count()
	s.DistinctTargetIDs = dataflow.Distinct(dataflow.Map(g.Edges, func(e epgm.Edge) epgm.ID { return e.Target })).Count()

	type labelID struct {
		Label string
		ID    epgm.ID
	}
	srcByLabel := dataflow.Distinct(dataflow.Map(g.Edges, func(e epgm.Edge) labelID {
		return labelID{Label: e.Label, ID: e.Source}
	}))
	for _, kv := range dataflow.CountByKey(srcByLabel, func(l labelID) string { return l.Label }).Collect() {
		s.DistinctSourceIDsByLabel[kv.Key] = kv.Value
	}
	tgtByLabel := dataflow.Distinct(dataflow.Map(g.Edges, func(e epgm.Edge) labelID {
		return labelID{Label: e.Label, ID: e.Target}
	}))
	for _, kv := range dataflow.CountByKey(tgtByLabel, func(l labelID) string { return l.Label }).Collect() {
		s.DistinctTargetIDsByLabel[kv.Key] = kv.Value
	}

	type labelKeyValue struct {
		LabelKey string
		Value    string
	}
	vertexProps := dataflow.FlatMap(g.Vertices, func(v epgm.Vertex, emit func(labelKeyValue)) {
		for _, p := range v.Properties {
			emit(labelKeyValue{LabelKey: PropKey(v.Label, p.Key), Value: p.Value.String()})
			emit(labelKeyValue{LabelKey: PropKey("", p.Key), Value: p.Value.String()})
		}
	})
	for _, kv := range dataflow.CountByKey(dataflow.Distinct(vertexProps), func(l labelKeyValue) string { return l.LabelKey }).Collect() {
		s.DistinctVertexProperties[kv.Key] = kv.Value
	}
	edgeProps := dataflow.FlatMap(g.Edges, func(e epgm.Edge, emit func(labelKeyValue)) {
		for _, p := range e.Properties {
			emit(labelKeyValue{LabelKey: PropKey(e.Label, p.Key), Value: p.Value.String()})
			emit(labelKeyValue{LabelKey: PropKey("", p.Key), Value: p.Value.String()})
		}
	})
	for _, kv := range dataflow.CountByKey(dataflow.Distinct(edgeProps), func(l labelKeyValue) string { return l.LabelKey }).Collect() {
		s.DistinctEdgeProperties[kv.Key] = kv.Value
	}
	return s
}

// VertexCardinality estimates the number of vertices matching a label
// alternation (empty = all labels).
func (s *GraphStatistics) VertexCardinality(labels []string) int64 {
	if len(labels) == 0 {
		return s.VertexCount
	}
	var n int64
	for _, l := range labels {
		n += s.VertexCountByLabel[l]
	}
	return n
}

// EdgeCardinality estimates the number of edges matching a type alternation.
func (s *GraphStatistics) EdgeCardinality(types []string) int64 {
	if len(types) == 0 {
		return s.EdgeCount
	}
	var n int64
	for _, t := range types {
		n += s.EdgeCountByLabel[t]
	}
	return n
}

// AverageOutDegree estimates the mean out-degree restricted to edges of the
// given types — the expansion factor of one hop of a variable length path.
func (s *GraphStatistics) AverageOutDegree(types []string) float64 {
	edges := s.EdgeCardinality(types)
	if edges == 0 {
		return 0
	}
	var sources int64
	if len(types) == 0 {
		sources = s.DistinctSourceIDs
	} else {
		for _, t := range types {
			sources += s.DistinctSourceIDsByLabel[t]
		}
	}
	if sources == 0 {
		return 0
	}
	return float64(edges) / float64(sources)
}

// DistinctVertexPropertyValues returns the distinct value count for a
// property key on vertices of the given labels, falling back to the
// cross-label aggregate and then to a default guess.
func (s *GraphStatistics) DistinctVertexPropertyValues(labels []string, key string) int64 {
	var n int64
	for _, l := range labels {
		n += s.DistinctVertexProperties[PropKey(l, key)]
	}
	if n == 0 {
		n = s.DistinctVertexProperties[PropKey("", key)]
	}
	if n == 0 {
		n = 10 // schema-free fallback
	}
	return n
}

// DistinctEdgePropertyValues is the edge-side analogue of
// DistinctVertexPropertyValues.
func (s *GraphStatistics) DistinctEdgePropertyValues(types []string, key string) int64 {
	var n int64
	for _, t := range types {
		n += s.DistinctEdgeProperties[PropKey(t, key)]
	}
	if n == 0 {
		n = s.DistinctEdgeProperties[PropKey("", key)]
	}
	if n == 0 {
		n = 10
	}
	return n
}

// String renders the statistics in a stable, human-readable layout.
func (s *GraphStatistics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vertices=%d edges=%d\n", s.VertexCount, s.EdgeCount)
	writeMap := func(name string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, "%s:", name)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", strings.ReplaceAll(k, "\x00", "."), m[k])
		}
		sb.WriteByte('\n')
	}
	writeMap("vertexLabels", s.VertexCountByLabel)
	writeMap("edgeLabels", s.EdgeCountByLabel)
	return sb.String()
}
