package gradoop

import (
	"testing"
)

// TestFullPipelineRoundTrip exercises the complete user journey: declare a
// graph in GDL, persist it as Gradoop-CSV, reload it into a different
// environment, query it with the full language surface, run an algorithm,
// and compose EPGM operators on the result.
func TestFullPipelineRoundTrip(t *testing.T) {
	src := NewEnvironment(WithWorkers(2))
	db, err := src.ParseGDL(`
		net:Social [
			(a:Person {name: "Ada", age: 36})
			(b:Person {name: "Bo", age: 29})
			(c:Person {name: "Cleo", age: 41})
			(d:Person {name: "Dan"})
			(a)-[:knows {since: 2010}]->(b)
			(b)-[:knows {since: 2015}]->(c)
			(a)-[:knows {since: 2020}]->(c)
			(c)-[:knows {since: 2021}]->(d)
		]`)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := db.Graph("net")
	dir := t.TempDir()
	if err := g.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	dst := NewEnvironment(WithWorkers(4))
	loaded, err := dst.ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.EqualsByData(g) {
		t.Fatal("CSV round trip changed graph data")
	}
	if err := loaded.Verify(); err != nil {
		t.Fatal(err)
	}

	// Full-surface query: var-length path, OPTIONAL MATCH, exists,
	// aggregation, ordering.
	rows, err := loaded.CypherRows(`
		MATCH (p:Person)-[e:knows*1..2]->(q:Person)
		WHERE exists((p)-[:knows]->(:Person)) AND q.age IS NOT NULL
		RETURN p.name AS src, count(*) AS reachable
		ORDER BY reachable DESC, src`,
		WithEdgeSemantics(Isomorphism))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Ada reaches Bo (1 hop), Cleo (direct + via Bo): 3 bindings with age.
	if rows[0].Values[0].Str() != "Ada" || rows[0].Values[1].Int() != 3 {
		t.Fatalf("top row: %v", rows[0])
	}

	// Algorithms compose on the loaded graph.
	ranked := loaded.PageRank(0.85, 10)
	var best string
	var bestScore float64
	for _, v := range ranked.Vertices() {
		if s := v.Properties.Get(PageRankPropertyKey).Float(); s > bestScore {
			bestScore = s
			best = v.Properties.Get("name").Str()
		}
	}
	// Dan is the chain's sink: Cleo forwards her entire (two-source) rank
	// to him, so he accumulates the most mass.
	if best != "Dan" {
		t.Fatalf("highest PageRank should be the sink Dan: %s (%.4f)", best, bestScore)
	}

	// EPGM composition: the match collection feeds set operations.
	matches, err := loaded.Cypher(`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	if matches.GraphCount() != 4 {
		t.Fatalf("match graphs: %d", matches.GraphCount())
	}
	first := matches.Heads()[0].ID
	one := matches.Select(func(h GraphHead) bool { return h.ID == first })
	if got := matches.Difference(one).GraphCount(); got != 3 {
		t.Fatalf("difference: %d", got)
	}
}

// TestSemanticsMatrixOnPublicAPI pins the four morphism combinations on a
// graph where they all differ.
func TestSemanticsMatrixOnPublicAPI(t *testing.T) {
	env := NewEnvironment(WithWorkers(2))
	db, err := env.ParseGDL(`g [
		(a)-[:x]->(b)
		(b)-[:x]->(a)
	]`)
	if err != nil {
		t.Fatal(err)
	}
	g := db.WholeGraph()
	query := `MATCH (p)-[:x]->(q)-[:x]->(r) RETURN *`
	counts := map[[2]Semantics]int64{}
	for _, v := range []Semantics{Homomorphism, Isomorphism} {
		for _, e := range []Semantics{Homomorphism, Isomorphism} {
			n, err := g.CypherCount(query, WithVertexSemantics(v), WithEdgeSemantics(e))
			if err != nil {
				t.Fatal(err)
			}
			counts[[2]Semantics{v, e}] = n
		}
	}
	// a->b->a and b->a->b: valid under vertex-HOMO (p=r), never under
	// vertex-ISO; edges are distinct so edge semantics don't matter here.
	if counts[[2]Semantics{Homomorphism, Homomorphism}] != 2 {
		t.Fatalf("homo/homo=%d", counts[[2]Semantics{Homomorphism, Homomorphism}])
	}
	if counts[[2]Semantics{Homomorphism, Isomorphism}] != 2 {
		t.Fatalf("homo/iso=%d", counts[[2]Semantics{Homomorphism, Isomorphism}])
	}
	if counts[[2]Semantics{Isomorphism, Isomorphism}] != 0 {
		t.Fatalf("iso/iso=%d", counts[[2]Semantics{Isomorphism, Isomorphism}])
	}
	if counts[[2]Semantics{Isomorphism, Homomorphism}] != 0 {
		t.Fatalf("iso/homo=%d", counts[[2]Semantics{Isomorphism, Homomorphism}])
	}
}
