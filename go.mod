module gradoop

go 1.24
