package gradoop

import "gradoop/internal/gdl"

// GDLDatabase holds the graphs declared by a GDL document (see ParseGDL).
type GDLDatabase struct {
	env *Environment
	db  *gdl.Database
}

// ParseGDL builds graphs from a GDL (Graph Definition Language) document,
// the concise notation Gradoop uses for fixtures and examples:
//
//	community:Community [
//	    (alice:Person {name: "Alice"})-[:knows]->(bob:Person {name: "Bob"})
//	    (bob)-[:knows]->(alice)
//	]
//
// Variables are shared across the document, so the same vertex can belong
// to several declared graphs.
func (e *Environment) ParseGDL(src string) (*GDLDatabase, error) {
	db, err := gdl.Parse(e.env, src)
	if err != nil {
		return nil, err
	}
	return &GDLDatabase{env: e, db: db}, nil
}

// Graph returns one declared logical graph by its GDL variable name.
func (d *GDLDatabase) Graph(name string) (*LogicalGraph, bool) {
	g, ok := d.db.Graph(name)
	if !ok {
		return nil, false
	}
	return &LogicalGraph{env: d.env, g: g}, true
}

// GraphNames lists the declared graph variables in declaration order.
func (d *GDLDatabase) GraphNames() []string { return d.db.GraphNames() }

// WholeGraph returns every declared element as one logical graph.
func (d *GDLDatabase) WholeGraph() *LogicalGraph {
	return &LogicalGraph{env: d.env, g: d.db.WholeGraph()}
}

// Collection returns all declared graphs as a graph collection.
func (d *GDLDatabase) Collection() *GraphCollection {
	return &GraphCollection{env: d.env, c: d.db.Collection()}
}

// Vertex returns a declared vertex by its GDL variable name.
func (d *GDLDatabase) Vertex(name string) (Vertex, bool) { return d.db.Vertex(name) }
