package gradoop

import (
	"math"
	"testing"
)

func TestPublicGDL(t *testing.T) {
	env := NewEnvironment(WithWorkers(2))
	db, err := env.ParseGDL(`
		community:Community [
			(alice:Person {name: "Alice"})-[:knows]->(bob:Person {name: "Bob"})
			(bob)-[:knows]->(alice)
		]
		work [ (alice)-[:worksAt]->(acme:Company {name: "ACME"}) ]`)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := db.Graph("community")
	if !ok || g.VertexCount() != 2 || g.EdgeCount() != 2 {
		t.Fatalf("community: %v", ok)
	}
	rows, err := g.CypherRows(`MATCH (a:Person)-[:knows]->(b) RETURN b.name ORDER BY b.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Values[0].Str() != "Alice" {
		t.Fatalf("rows: %v", rows)
	}
	if db.Collection().GraphCount() != 2 {
		t.Fatal("collection")
	}
	if whole := db.WholeGraph(); whole.VertexCount() != 3 {
		t.Fatalf("whole: %d", whole.VertexCount())
	}
	if _, ok := db.Vertex("acme"); !ok {
		t.Fatal("acme missing")
	}
	if _, err := env.ParseGDL(`g [ (broken`); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPublicAlgorithms(t *testing.T) {
	env := NewEnvironment(WithWorkers(4))
	db, err := env.ParseGDL(`g [
		(a)-[:e {w: 2.0}]->(b)-[:e {w: 3.0}]->(c)
		(a)-[:e {w: 10.0}]->(c)
		(x)-[:e]->(y)
	]`)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := db.Graph("g")

	cc := g.ConnectedComponents(10)
	comps := map[int64]int{}
	for _, v := range cc.Vertices() {
		comps[v.Properties.Get(ComponentPropertyKey).Int()]++
	}
	if len(comps) != 2 {
		t.Fatalf("components: %v", comps)
	}

	pr := g.PageRank(0.85, 10)
	var sum float64
	for _, v := range pr.Vertices() {
		sum += v.Properties.Get(PageRankPropertyKey).Float()
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank sum %f", sum)
	}

	a, _ := db.Vertex("a")
	c, _ := db.Vertex("c")
	sp := g.ShortestPaths(a.ID, "w", 10)
	for _, v := range sp.Vertices() {
		if v.ID == c.ID {
			if got := v.Properties.Get(SSSPPropertyKey).Float(); got != 5 {
				t.Fatalf("distance to c: %f want 5 (2+3 beats direct 10)", got)
			}
		}
	}
}

func TestPublicQueryWithModifiers(t *testing.T) {
	env := NewEnvironment(WithWorkers(2))
	g, _ := env.GenerateSocialNetwork(0.05, 3)
	rows, err := g.CypherRows(`
		MATCH (p:Person)-[:hasInterest]->(t:Tag)
		RETURN t.name AS tag, count(*) AS fans
		ORDER BY fans DESC, tag LIMIT 3`,
		WithEdgeSemantics(Isomorphism))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Values[1].Int() < rows[1].Values[1].Int() {
		t.Fatal("not ordered by fans desc")
	}
}

func TestPublicSample(t *testing.T) {
	env := NewEnvironment(WithWorkers(4))
	g, _ := env.GenerateSocialNetwork(0.1, 5)
	sampled := g.SampleVertices(0.25, 42)
	ratio := float64(sampled.VertexCount()) / float64(g.VertexCount())
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("sample ratio %f", ratio)
	}
	// Deterministic.
	again := g.SampleVertices(0.25, 42)
	if again.VertexCount() != sampled.VertexCount() {
		t.Fatal("sampling not deterministic")
	}
	// Edges only survive when both endpoints do.
	kept := map[ID]bool{}
	for _, v := range sampled.Vertices() {
		kept[v.ID] = true
	}
	for _, e := range sampled.Edges() {
		if !kept[e.Source] || !kept[e.Target] {
			t.Fatal("dangling edge in sample")
		}
	}
}
