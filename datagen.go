package gradoop

import "gradoop/internal/ldbc"

// SocialNetworkInfo summarizes a generated benchmark graph.
type SocialNetworkInfo struct {
	Persons, Posts, Comments, Forums, Tags int
	// CommonFirstName, MediumFirstName and RareFirstName are parameter
	// values for selectivity experiments: predicates on the common name
	// select a large population, on the rare name almost none.
	CommonFirstName, MediumFirstName, RareFirstName string
}

// GenerateSocialNetwork builds a deterministic LDBC-SNB-like social network
// (persons, posts, comments, forums, tags, universities, cities with
// power-law degree and Zipf property distributions). scaleFactor 1.0 yields
// roughly 10,000 vertices; the same (scaleFactor, seed) pair always produces
// a structurally identical graph.
func (e *Environment) GenerateSocialNetwork(scaleFactor float64, seed int64) (*LogicalGraph, SocialNetworkInfo) {
	d := ldbc.Generate(e.env, ldbc.Config{ScaleFactor: scaleFactor, Seed: seed})
	common, medium, rare := d.FirstNamesBySelectivity()
	return &LogicalGraph{env: e, g: d.Graph}, SocialNetworkInfo{
		Persons: d.Persons, Posts: d.Posts, Comments: d.Comments,
		Forums: d.Forums, Tags: d.Tags,
		CommonFirstName: common, MediumFirstName: medium, RareFirstName: rare,
	}
}
