// Command cypherworker is one worker process of a cypherd cluster. It
// loads the same Gradoop-CSV dataset as the coordinator, listens for the
// coordinator's control connection and for shuffle connections from its
// peer workers, and executes the stage programs the coordinator ships.
// Partition ownership, the job roster and recovery are entirely the
// coordinator's business — a worker only needs the graph and a listen
// address.
//
//	cypherworker -graph data/sample -addr 127.0.0.1:7481 -node w1
//	cypherd -graph data/sample -cluster 127.0.0.1:7481,127.0.0.1:7482
//
// -fail-after is a fault-injection hook for recovery drills: the worker
// kills itself (listener and every connection closed, exactly as a crash
// would) after that many collective shuffle exchanges.
//
// Each worker keeps its own metrics registry and ships it — together with
// its execution spans — to the coordinator inside the per-job telemetry
// bundle; the coordinator's federated /metrics serves the result.
// -no-telemetry turns the shipping off (spans are still recorded for the
// per-stage records in the done report, but nothing extra crosses the
// wire and the coordinator marks the query's report partial-telemetry).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strings"

	"gradoop/internal/cluster"
	"gradoop/internal/dataflow"
	"gradoop/internal/obs"
	"gradoop/internal/session"
	csvstore "gradoop/internal/storage/csv"
)

func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(obs.NewLogHandler(h)), nil
}

func main() {
	graphDir := flag.String("graph", "", "Gradoop-CSV dataset directory (required; must match the coordinator's)")
	addr := flag.String("addr", "127.0.0.1:7481", "listen address for coordinator and peer connections")
	node := flag.String("node", "", "stable node ID for partition placement (default: the listen address)")
	failAfter := flag.Int64("fail-after", 0, "fault injection: crash after N collective exchanges (0 disables)")
	noTelemetry := flag.Bool("no-telemetry", false, "do not ship span/metrics bundles to the coordinator")
	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cypherworker: %v\n", err)
		os.Exit(1)
	}
	if *graphDir == "" {
		fmt.Fprintln(os.Stderr, "cypherworker: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fail(err)
	}

	// The loading environment is scratch: the worker pins the raw slices and
	// rebinds them into each job's own environment.
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	g, err := csvstore.ReadLogicalGraph(env, *graphDir)
	if err != nil {
		fail(err)
	}
	data := session.NewGraphData(g)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	id := *node
	if id == "" {
		id = ln.Addr().String()
	}
	w := cluster.NewWorkerWith(id, data, cluster.WorkerOptions{
		Logger:      logger,
		Metrics:     obs.NewRegistry(),
		NoTelemetry: *noTelemetry,
	})
	if *failAfter > 0 {
		w.SetFailAfterExchanges(*failAfter)
		logger.Warn("fault injection armed", "fail_after_exchanges", *failAfter)
	}
	logger.Info("worker up", "node", id, "addr", ln.Addr().String(),
		"vertices", len(data.Vertices), "edges", len(data.Edges))
	if err := w.Serve(ln); err != nil {
		fail(err)
	}
	// Serve returned because Crash/Close severed the sockets; drain the
	// connection handlers and job goroutines before the process exits.
	w.Wait()
}
