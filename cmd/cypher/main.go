// Command cypher runs a Cypher pattern matching query against a Gradoop-CSV
// dataset directory and prints the result rows (or just the match count),
// optionally with the query plan.
//
// Usage:
//
//	cypher -graph ./data/sf1 -query 'MATCH (p:Person)-[:knows]->(q) RETURN p.firstName' \
//	       -workers 8 -vertex-sem homo -edge-sem iso -explain
//
// Parameters are passed as repeated -param name=value flags; values are
// treated as strings unless they parse as integers or floats.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
	csvstore "gradoop/internal/storage/csv"
)

type paramFlags map[string]epgm.PropertyValue

// String implements flag.Value.
func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]epgm.PropertyValue(p)) }

// Set implements flag.Value, parsing name=value with type inference.
func (p paramFlags) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	if n, err := strconv.ParseInt(value, 10, 64); err == nil {
		p[name] = epgm.PVInt(n)
	} else if f, err := strconv.ParseFloat(value, 64); err == nil {
		p[name] = epgm.PVFloat(f)
	} else if b, err := strconv.ParseBool(value); err == nil {
		p[name] = epgm.PVBool(b)
	} else {
		p[name] = epgm.PVString(value)
	}
	return nil
}

func parseSemantics(s string) (operators.Semantics, error) {
	switch strings.ToLower(s) {
	case "homo", "homomorphism":
		return operators.Homomorphism, nil
	case "iso", "isomorphism":
		return operators.Isomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want homo or iso)", s)
	}
}

func main() {
	graphDir := flag.String("graph", "", "Gradoop-CSV dataset directory (required)")
	query := flag.String("query", "", "Cypher query (required unless -i)")
	interactive := flag.Bool("i", false, "interactive mode: read one query per line from stdin")
	workers := flag.Int("workers", 4, "number of dataflow workers")
	vertexSem := flag.String("vertex-sem", "homo", "vertex semantics: homo|iso")
	edgeSem := flag.String("edge-sem", "iso", "edge semantics: homo|iso")
	explain := flag.Bool("explain", false, "print the query plan")
	countOnly := flag.Bool("count", false, "print only the match count")
	maxRows := flag.Int("max-rows", 100, "print at most this many rows")
	timeout := flag.Duration("timeout", 0, "abort a query after this duration (e.g. 5s; 0 = no limit)")
	params := paramFlags{}
	flag.Var(params, "param", "query parameter name=value (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cypher: %v\n", err)
		os.Exit(1)
	}
	if *graphDir == "" || (*query == "" && !*interactive) {
		fmt.Fprintln(os.Stderr, "cypher: -graph and -query (or -i) are required")
		flag.Usage()
		os.Exit(2)
	}
	vs, err := parseSemantics(*vertexSem)
	if err != nil {
		fail(err)
	}
	es, err := parseSemantics(*edgeSem)
	if err != nil {
		fail(err)
	}

	env := dataflow.NewEnv(dataflow.DefaultConfig(*workers))
	g, err := csvstore.ReadLogicalGraph(env, *graphDir)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *graphDir, g.VertexCount(), g.EdgeCount())

	st := stats.Collect(g)
	runQuery := func(q string) {
		env.ResetMetrics()
		start := time.Now()
		res, err := core.Execute(g, q, core.Config{
			Vertex: vs, Edge: es, Params: params, Stats: st, Timeout: *timeout,
		})
		if err != nil {
			if *interactive {
				fmt.Fprintf(os.Stderr, "cypher: %v\n", err)
				return
			}
			fail(err)
		}
		count := res.Count()
		elapsed := time.Since(start)

		if *explain {
			fmt.Println("plan:")
			fmt.Print(res.Explain())
		}
		if !*countOnly {
			rows := res.Rows()
			for i, row := range rows {
				if i >= *maxRows {
					fmt.Printf("... (%d more rows)\n", len(rows)-*maxRows)
					break
				}
				fmt.Println(row)
			}
		}
		m := env.Metrics()
		fmt.Printf("%d matches in %s (simulated cluster time %s, %s)\n",
			count, elapsed.Round(time.Millisecond), m.SimTime.Round(time.Microsecond), m)
	}

	if !*interactive {
		runQuery(*query)
		return
	}
	fmt.Println("interactive mode; one query per line, empty line or EOF quits")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("cypher> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		runQuery(line)
	}
}
