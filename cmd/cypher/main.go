// Command cypher runs a Cypher pattern matching query against a Gradoop-CSV
// dataset directory and prints the result rows (or just the match count),
// optionally with the query plan or its EXPLAIN ANALYZE rendering.
//
// Usage:
//
//	cypher -graph ./data/sf1 -query 'MATCH (p:Person)-[:knows]->(q) RETURN p.firstName' \
//	       -workers 8 -vertex-sem homo -edge-sem iso -analyze
//
// Observability flags:
//
//	-explain        print the query plan and exit without executing
//	-analyze        execute, then print the plan annotated with estimated
//	                vs. actual cardinality and per-operator time
//	-trace out.json write a Chrome trace_event timeline of the execution
//	                (open in chrome://tracing or Perfetto)
//	-metrics text   print a per-worker metrics breakdown after the query
//	-metrics json   print the metrics snapshot plus per-stage spans as JSON
//
// Parameters are passed as repeated -param name=value flags; values are
// treated as strings unless they parse as integers or floats.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/operators"
	"gradoop/internal/params"
	"gradoop/internal/stats"
	csvstore "gradoop/internal/storage/csv"
	"gradoop/internal/trace"
)

// metricsDump is the -metrics json output: the aggregate snapshot plus the
// per-stage spans recorded by the tracer.
type metricsDump struct {
	Metrics dataflow.MetricsSnapshot `json:"metrics"`
	Stages  []trace.Span             `json:"stages"`
}

// printWorkerMetrics renders the -metrics text per-worker breakdown.
func printWorkerMetrics(m dataflow.MetricsSnapshot) {
	fmt.Printf("per-worker breakdown (skew %.2f):\n", m.Skew())
	for p := 0; p < m.Workers; p++ {
		fmt.Printf("  worker %d: cpu=%d elements, net=%dB, spill=%dB\n",
			p, m.CPUElements[p], m.NetBytes[p], m.SpillBytes[p])
	}
}

// writeTrace writes the collector's Chrome trace_event JSON to path,
// overwriting any earlier trace (in interactive mode the file always holds
// the most recent query).
func writeTrace(path string, c *trace.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSemantics(s string) (operators.Semantics, error) {
	switch strings.ToLower(s) {
	case "homo", "homomorphism":
		return operators.Homomorphism, nil
	case "iso", "isomorphism":
		return operators.Isomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want homo or iso)", s)
	}
}

func main() {
	graphDir := flag.String("graph", "", "Gradoop-CSV dataset directory (required)")
	query := flag.String("query", "", "Cypher query (required unless -i)")
	interactive := flag.Bool("i", false, "interactive mode: read one query per line from stdin")
	workers := flag.Int("workers", 4, "number of dataflow workers")
	vertexSem := flag.String("vertex-sem", "homo", "vertex semantics: homo|iso")
	edgeSem := flag.String("edge-sem", "iso", "edge semantics: homo|iso")
	explain := flag.Bool("explain", false, "print the query plan without executing it")
	analyze := flag.Bool("analyze", false, "execute, then print the plan with estimated vs. actual cardinalities (EXPLAIN ANALYZE)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the execution to this file")
	metricsMode := flag.String("metrics", "", "print detailed metrics after the query: text or json")
	countOnly := flag.Bool("count", false, "print only the match count")
	maxRows := flag.Int("max-rows", 100, "print at most this many rows")
	timeout := flag.Duration("timeout", 0, "abort a query after this duration (e.g. 5s; 0 = no limit)")
	qparams := params.Flags{}
	flag.Var(qparams, "param", "query parameter name=value (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cypher: %v\n", err)
		os.Exit(1)
	}
	if *graphDir == "" || (*query == "" && !*interactive) {
		fmt.Fprintln(os.Stderr, "cypher: -graph and -query (or -i) are required")
		flag.Usage()
		os.Exit(2)
	}
	vs, err := parseSemantics(*vertexSem)
	if err != nil {
		fail(err)
	}
	es, err := parseSemantics(*edgeSem)
	if err != nil {
		fail(err)
	}

	env := dataflow.NewEnv(dataflow.DefaultConfig(*workers))
	g, err := csvstore.ReadLogicalGraph(env, *graphDir)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *graphDir, g.VertexCount(), g.EdgeCount())

	if *metricsMode != "" && *metricsMode != "text" && *metricsMode != "json" {
		fail(fmt.Errorf("unknown -metrics mode %q (want text or json)", *metricsMode))
	}
	// Tracing is enabled only when something consumes it; otherwise the
	// engine runs its zero-cost untraced path.
	tracing := *analyze || *traceFile != "" || *metricsMode == "json"

	st := stats.Collect(g)
	runQuery := func(q string) {
		cfg := core.Config{
			Vertex: vs, Edge: es, Params: qparams, Stats: st, Timeout: *timeout,
		}
		report := func(err error) {
			if *interactive {
				fmt.Fprintf(os.Stderr, "cypher: %v\n", err)
				return
			}
			fail(err)
		}
		if *explain {
			plan, err := core.Plan(g, q, cfg)
			if err != nil {
				report(err)
				return
			}
			fmt.Println("plan:")
			fmt.Print(plan.Explain())
			return
		}
		if tracing {
			cfg.Trace = trace.NewCollector()
		}
		env.ResetMetrics()
		start := time.Now()
		res, err := core.Execute(g, q, cfg)
		if err != nil {
			report(err)
			return
		}
		count := res.Count()
		elapsed := time.Since(start)

		if *analyze {
			fmt.Println("analyzed plan:")
			fmt.Print(res.AnalyzedPlan())
		}
		if !*countOnly {
			rows := res.Rows()
			for i, row := range rows {
				if i >= *maxRows {
					fmt.Printf("... (%d more rows)\n", len(rows)-*maxRows)
					break
				}
				fmt.Println(row)
			}
		}
		m := env.Metrics()
		fmt.Printf("%d matches in %s (simulated cluster time %s, %s)\n",
			count, elapsed.Round(time.Millisecond), m.SimTime.Round(time.Microsecond), m)
		switch *metricsMode {
		case "text":
			printWorkerMetrics(m)
		case "json":
			if err := json.NewEncoder(os.Stdout).Encode(metricsDump{
				Metrics: m, Stages: cfg.Trace.Spans(),
			}); err != nil {
				report(err)
				return
			}
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, cfg.Trace); err != nil {
				report(err)
				return
			}
			fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceFile)
		}
	}

	if !*interactive {
		runQuery(*query)
		return
	}
	fmt.Println("interactive mode; one query per line, empty line or EOF quits")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("cypher> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		runQuery(line)
	}
}
