// Command bench regenerates the paper's evaluation tables and figures
// (§4): the speedup-over-workers experiment (Figure 3), the data-volume
// experiment (Figure 4), the predicate-selectivity experiment (Figure 5),
// the intermediate-result-size table (Table 3), the full runtime matrix
// (Table 4) and the appendix result cardinalities. The analyze experiment
// prints every query's EXPLAIN ANALYZE plan and can export per-query
// Chrome trace timelines.
//
// Usage:
//
//	bench -exp all
//	bench -exp figure3 -sf-small 0.1 -sf-large 1.0
//	bench -exp analyze -trace out   # writes out-Q1.json .. out-Q6.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gradoop/internal/benchkit"
)

func main() {
	exp := flag.String("exp", "all", "experiment: figure3|figure4|figure5|table3|table4|cards|extended|recovery|analyze|serve|chaos|cluster|all")
	sfSmall := flag.Float64("sf-small", 0.1, "small scale factor (the paper's SF10 stand-in)")
	sfLarge := flag.Float64("sf-large", 1.0, "large scale factor (the paper's SF100 stand-in)")
	seed := flag.Int64("seed", 2017, "generator seed")
	tracePrefix := flag.String("trace", "", "analyze experiment: write per-query Chrome traces to <prefix>-Q<n>.json")
	flag.Parse()

	r := benchkit.NewRunner()
	r.SFSmall = *sfSmall
	r.SFLarge = *sfLarge
	r.Seed = *seed

	experiments := map[string]func() error{
		"figure3":  func() error { return benchkit.Figure3(r, os.Stdout) },
		"figure4":  func() error { return benchkit.Figure4(r, os.Stdout) },
		"figure5":  func() error { return benchkit.Figure5(r, os.Stdout) },
		"table3":   func() error { return benchkit.Table3(r, os.Stdout) },
		"table4":   func() error { return benchkit.Table4(r, os.Stdout) },
		"cards":    func() error { return benchkit.Cardinalities(r, os.Stdout) },
		"extended": func() error { return benchkit.Extended(r, os.Stdout) },
		"recovery": func() error { return benchkit.Recovery(r, os.Stdout) },
		"analyze":  func() error { return benchkit.Analyze(r, os.Stdout, *tracePrefix) },
		"serve":    func() error { return benchkit.Serve(r, os.Stdout) },
		"chaos":    func() error { return benchkit.Chaos(r, os.Stdout) },
		"cluster":  func() error { return benchkit.Cluster(r, os.Stdout) },
	}
	order := []string{"figure3", "figure4", "figure5", "table3", "table4", "cards", "extended", "recovery", "analyze", "serve", "chaos", "cluster"}

	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*exp)
}
