// Command cypherd serves Cypher queries over JSON-HTTP against a graph
// loaded once into a long-lived session. The session pins graph statistics
// and label indexes, caches compiled query plans and recent results, and
// admission-controls concurrent requests with bounded job slots and a
// bounded wait queue.
//
// Endpoints: POST/GET /query, /explain, /analyze, /metrics, /healthz.
//
//	cypherd -graph data/sample -addr :7474
//	curl -s localhost:7474/query -d '{"query":"MATCH (a:Person) RETURN a.name"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gradoop/internal/operators"
	"gradoop/internal/server"
	"gradoop/internal/session"
)

func parseSemantics(s string) (operators.Semantics, error) {
	switch strings.ToLower(s) {
	case "homo", "homomorphism":
		return operators.Homomorphism, nil
	case "iso", "isomorphism":
		return operators.Isomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want homo or iso)", s)
	}
}

func main() {
	graphDir := flag.String("graph", "", "Gradoop-CSV dataset directory (required)")
	addr := flag.String("addr", ":7474", "HTTP listen address")
	workers := flag.Int("workers", 4, "number of dataflow workers per query job")
	vertexSem := flag.String("vertex-sem", "homo", "vertex semantics: homo|iso")
	edgeSem := flag.String("edge-sem", "iso", "edge semantics: homo|iso")
	maxConcurrent := flag.Int("max-concurrent", 4, "query job slots (concurrent executions)")
	maxQueued := flag.Int("max-queue", 16, "bounded wait queue beyond the job slots; -1 rejects immediately when slots are full")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline, including queue wait (0 = none)")
	planEntries := flag.Int("plan-cache-entries", 128, "plan cache capacity (entries)")
	resultMB := flag.Int("result-cache-mb", 16, "result cache byte budget in MiB")
	noPlanCache := flag.Bool("no-plan-cache", false, "disable the plan cache (recompile every request)")
	noResultCache := flag.Bool("no-result-cache", false, "disable the result cache (re-execute every request)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cypherd: %v\n", err)
		os.Exit(1)
	}
	if *graphDir == "" {
		fmt.Fprintln(os.Stderr, "cypherd: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	vs, err := parseSemantics(*vertexSem)
	if err != nil {
		fail(err)
	}
	es, err := parseSemantics(*edgeSem)
	if err != nil {
		fail(err)
	}

	sess, err := session.Open(*graphDir, session.Options{
		Workers:          *workers,
		Vertex:           vs,
		Edge:             es,
		MaxConcurrent:    *maxConcurrent,
		MaxQueued:        *maxQueued,
		DefaultTimeout:   *timeout,
		PlanCacheEntries: *planEntries,
		ResultCacheBytes: int64(*resultMB) << 20,
		NoPlanCache:      *noPlanCache,
		NoResultCache:    *noResultCache,
	})
	if err != nil {
		fail(err)
	}
	vertices, edges := sess.GraphSize()
	log.Printf("cypherd: loaded %s: %d vertices, %d edges", *graphDir, vertices, edges)

	httpSrv := &http.Server{Addr: *addr, Handler: server.New(sess)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		log.Printf("cypherd: listening on %s (slots=%d queue=%d timeout=%s)",
			*addr, *maxConcurrent, *maxQueued, *timeout)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		log.Printf("cypherd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}
