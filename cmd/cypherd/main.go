// Command cypherd serves Cypher queries over JSON-HTTP against a graph
// loaded once into a long-lived session. The session pins graph statistics
// and label indexes, caches compiled query plans and recent results, and
// admission-controls concurrent requests with bounded job slots and a
// bounded wait queue. Telemetry is on by default: a metrics registry the
// engine, session and server publish into (Prometheus exposition at
// /metrics), structured logs correlated by X-Trace-Id, a slow-query log,
// and a live /jobs view of in-flight queries. -ops-addr starts a second,
// operator-only listener with the pprof endpoints.
//
// -qstore-dir enables the persistent query store: one JSONL record per
// completed execution, per-fingerprint aggregates with plan-regression
// detection, and the /querystore endpoints.
//
// Endpoints: POST/GET /query, /explain, /analyze, /metrics,
// /metrics.json, /jobs, /querystore/top, /querystore/fingerprint/{id},
// /querystore/regressions, /healthz — plus, in -cluster mode,
// /cluster/workers (the roster with liveness and per-worker job counts);
// /metrics then also federates the workers' last-shipped registry
// snapshots as per-worker-labeled gradoop_cluster_* series, so one scrape
// covers the whole cluster.
//
//	cypherd -graph data/sample -addr :7474 -ops-addr 127.0.0.1:7475
//	curl -s localhost:7474/query -d '{"query":"MATCH (a:Person) RETURN a.name"}'
//	curl -s localhost:7474/metrics | grep gradoop_query_duration
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gradoop/internal/cluster"
	"gradoop/internal/govern"
	"gradoop/internal/obs"
	"gradoop/internal/operators"
	"gradoop/internal/qstore"
	"gradoop/internal/server"
	"gradoop/internal/session"
)

func parseSemantics(s string) (operators.Semantics, error) {
	switch strings.ToLower(s) {
	case "homo", "homomorphism":
		return operators.Homomorphism, nil
	case "iso", "isomorphism":
		return operators.Isomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want homo or iso)", s)
	}
}

// newLogger builds the process logger: text or JSON handler at the chosen
// level, wrapped so every record carries the trace_id stamped into its
// context by the server.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(obs.NewLogHandler(h)), nil
}

func main() {
	graphDir := flag.String("graph", "", "Gradoop-CSV dataset directory (required)")
	addr := flag.String("addr", ":7474", "HTTP listen address")
	workers := flag.Int("workers", 4, "number of dataflow workers per query job")
	vertexSem := flag.String("vertex-sem", "homo", "vertex semantics: homo|iso")
	edgeSem := flag.String("edge-sem", "iso", "edge semantics: homo|iso")
	maxConcurrent := flag.Int("max-concurrent", 4, "query job slots (concurrent executions)")
	maxQueued := flag.Int("max-queue", 16, "bounded wait queue beyond the job slots; -1 rejects immediately when slots are full")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline, including queue wait (0 = none)")
	planEntries := flag.Int("plan-cache-entries", 128, "plan cache capacity (entries)")
	resultMB := flag.Int("result-cache-mb", 16, "result cache byte budget in MiB")
	memBudgetMB := flag.Int("mem-budget", 0, "process-wide memory budget for materialized embeddings, in MiB (0 disables governance)")
	shedPolicy := flag.String("shed-policy", "largest", "victim selection on budget exhaustion: largest|self")
	noPlanCache := flag.Bool("no-plan-cache", false, "disable the plan cache (recompile every request)")
	noResultCache := flag.Bool("no-result-cache", false, "disable the result cache (re-execute every request)")
	noTelemetry := flag.Bool("no-telemetry", false, "disable the metrics registry (nil instruments; /metrics serves an empty exposition)")
	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (0 disables)")
	opsAddr := flag.String("ops-addr", "", "operator-only listen address for pprof (empty disables); bind to loopback")
	qstoreDir := flag.String("qstore-dir", "", "query-store directory for persistent per-execution records (empty disables the store)")
	qstoreMaxBytes := flag.Int64("qstore-max-bytes", qstore.DefaultMaxTotalBytes, "query-store total size bound in bytes; oldest segments are pruned past it")
	qstoreThreshold := flag.Float64("qstore-regression-threshold", qstore.DefaultRegressionThreshold, "flag a fingerprint when its recent latency or q-error exceeds its own baseline by this factor")
	clusterAddrs := flag.String("cluster", "", "comma-separated cypherworker addresses; queries execute across these processes instead of in-process")
	clusterPart := flag.String("cluster-partitioner", "rendezvous", "partition placement policy: rendezvous|range")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "cypherd: %v\n", err)
		os.Exit(1)
	}
	if *graphDir == "" {
		fmt.Fprintln(os.Stderr, "cypherd: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	vs, err := parseSemantics(*vertexSem)
	if err != nil {
		fail(err)
	}
	es, err := parseSemantics(*edgeSem)
	if err != nil {
		fail(err)
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fail(err)
	}
	policy, err := govern.ParsePolicy(*shedPolicy)
	if err != nil {
		fail(err)
	}

	var registry *obs.Registry
	if !*noTelemetry {
		registry = obs.NewRegistry()
	}

	var store *qstore.Store
	if *qstoreDir != "" {
		store, err = qstore.Open(qstore.Options{
			Dir:                 *qstoreDir,
			MaxTotalBytes:       *qstoreMaxBytes,
			RegressionThreshold: *qstoreThreshold,
			Metrics:             registry,
			Logger:              logger,
		})
		if err != nil {
			fail(err)
		}
		defer store.Close()
	}

	var remote session.RemoteExecutor
	if *clusterAddrs != "" {
		part, ok := cluster.PartitionerByName(*clusterPart)
		if !ok {
			fail(fmt.Errorf("unknown -cluster-partitioner %q (want rendezvous or range)", *clusterPart))
		}
		coord, err := cluster.NewCoordinator(strings.Split(*clusterAddrs, ","), cluster.Options{
			// The logical partition count is the session's worker count: the
			// coordinator's plan and every worker's plan must be the same
			// deterministic function of (query, stats, workers).
			Workers:     *workers,
			Partitioner: part,
			Metrics:     registry,
			Logger:      logger,
		})
		if err != nil {
			fail(err)
		}
		defer coord.Close()
		remote = coord
		logger.Info("cluster mode", "workers", coord.LiveWorkers(), "partitioner", part.Name())
	}

	sess, err := session.Open(*graphDir, session.Options{
		Workers:            *workers,
		Vertex:             vs,
		Edge:               es,
		MaxConcurrent:      *maxConcurrent,
		MaxQueued:          *maxQueued,
		DefaultTimeout:     *timeout,
		PlanCacheEntries:   *planEntries,
		ResultCacheBytes:   int64(*resultMB) << 20,
		MemoryBudget:       int64(*memBudgetMB) << 20,
		ShedPolicy:         policy,
		NoPlanCache:        *noPlanCache,
		NoResultCache:      *noResultCache,
		Metrics:            registry,
		Logger:             logger,
		SlowQueryThreshold: *slowQuery,
		QueryStore:         store,
		Remote:             remote,
	})
	if err != nil {
		fail(err)
	}
	vertices, edges := sess.GraphSize()
	logger.Info("graph loaded", "dir", *graphDir, "vertices", vertices, "edges", edges)

	handler := server.New(sess, server.Config{Metrics: registry, Logger: logger})
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *opsAddr != "" {
		opsSrv := &http.Server{Addr: *opsAddr, Handler: server.NewOpsMux()}
		//lint:ignore goleak process-lifetime listener; the deferred opsSrv.Close below bounds it at shutdown
		go func() {
			logger.Info("ops listener up", "addr", *opsAddr)
			if err := opsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "err", err)
			}
		}()
		defer opsSrv.Close()
	}

	done := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr,
			"slots", *maxConcurrent, "queue", *maxQueued, "timeout", *timeout)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}
