// Command ldbcgen generates an LDBC-SNB-like social network graph and
// writes it as a Gradoop-CSV dataset directory.
//
// Usage:
//
//	ldbcgen -sf 1.0 -seed 2017 -out ./data/sf1
package main

import (
	"flag"
	"fmt"
	"os"

	"gradoop/internal/dataflow"
	"gradoop/internal/ldbc"
	csvstore "gradoop/internal/storage/csv"
)

func main() {
	sf := flag.Float64("sf", 1.0, "scale factor (1.0 ≈ 1,000 persons, ~10k vertices)")
	seed := flag.Int64("seed", 2017, "generator seed")
	out := flag.String("out", "", "output dataset directory (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ldbcgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: *sf, Seed: *seed})
	if err := csvstore.WriteLogicalGraph(d.Graph, *out); err != nil {
		fmt.Fprintf(os.Stderr, "ldbcgen: %v\n", err)
		os.Exit(1)
	}
	common, medium, rare := d.FirstNamesBySelectivity()
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, d.Graph.VertexCount(), d.Graph.EdgeCount())
	fmt.Printf("  persons=%d posts=%d comments=%d forums=%d tags=%d\n",
		d.Persons, d.Posts, d.Comments, d.Forums, d.Tags)
	fmt.Printf("  selectivity params: low=%q (%d persons) medium=%q (%d) high=%q (%d)\n",
		common, d.FirstNameCount(common), medium, d.FirstNameCount(medium), rare, d.FirstNameCount(rare))
}
