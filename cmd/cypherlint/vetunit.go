package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"gradoop/internal/lint"
	"gradoop/internal/lint/load"
)

// vetConfig is the JSON unit description cmd/go hands a vet tool for each
// package: the sources to analyze plus the import map and export-data files
// of the package's dependency closure (mirrors x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet unit and returns the process exit code: 0 for
// clean, 2 for findings (the exit code cmd/go's vet driver expects from a
// tool that found problems).
func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypherlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cypherlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Facts output: cypherlint's analyzers are fact-free, but cmd/go caches
	// the file, so it must exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cypherlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(os.Stderr, "cypherlint: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cypherlint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "cypherlint:", err)
		return 1
	}

	checked := &load.Checked{ImportPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	findings, err := lint.Run(checked, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypherlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
