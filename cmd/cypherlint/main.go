// Command cypherlint runs the project's static-analysis suite (see
// internal/lint): envmix, partitioncapture, costcharge, tracepair,
// ctxpoll and obsregister. It has two modes:
//
//	cypherlint [-json] [packages]      standalone; defaults to ./...
//	go vet -vettool=$(which cypherlint) ./...
//
// The vettool mode speaks the cmd/go vet protocol: `-V=full` prints a
// version fingerprint for the build cache, `-flags` declares no extra
// flags, and a single *.cfg argument carries the JSON unit description
// (sources, import map, export-data files) for one package.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gradoop/internal/lint"
	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/load"
)

func main() {
	// The vet protocol probes come before flag parsing: cmd/go invokes the
	// tool with exactly one of these as the first argument.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			// The output format is fixed by cmd/go's vet tool handshake: it
			// must end in a buildID= field (do-not-cache opts this tool's
			// results out of the build cache, as x/tools' unitchecker does).
			fmt.Printf("%s version devel buildID=do-not-cache\n", os.Args[0])
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetUnit(os.Args[1]))
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	statsOut := flag.Bool("stats", false, "print per-analyzer wall time and finding counts to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cypherlint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var stats *lint.Stats
	if *statsOut {
		stats = &lint.Stats{}
	}
	findings, err := runStandalone(patterns, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypherlint:", err)
		os.Exit(1)
	}
	if *statsOut {
		fmt.Fprintf(os.Stderr, "%-18s %12s %9s\n", "analyzer", "wall", "findings")
		for _, s := range stats.Rows() {
			fmt.Fprintf(os.Stderr, "%-18s %12s %9d\n", s.Analyzer, s.Time.Round(time.Microsecond), s.Findings)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "cypherlint:", err)
			os.Exit(1)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// runStandalone loads the patterns from the enclosing module and runs the
// full suite over every matched package as one program, so the flow
// analyzers see cross-package call-graph summaries.
func runStandalone(patterns []string, stats *lint.Stats) ([]analysis.Finding, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := load.ModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	loader, err := load.New(root, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Roots()
	if err != nil {
		return nil, err
	}
	findings, err := lint.RunProgram(pkgs, lint.Analyzers(), stats)
	if err != nil {
		return nil, err
	}
	if findings == nil {
		findings = []analysis.Finding{}
	}
	return findings, nil
}
