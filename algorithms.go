package gradoop

import "gradoop/internal/algorithms"

// Result property keys written by the graph algorithms.
const (
	// ComponentPropertyKey holds a vertex's weakly-connected-component id.
	ComponentPropertyKey = algorithms.ComponentPropertyKey
	// PageRankPropertyKey holds a vertex's PageRank score.
	PageRankPropertyKey = algorithms.PageRankPropertyKey
	// SSSPPropertyKey holds a vertex's shortest-path distance.
	SSSPPropertyKey = algorithms.SSSPPropertyKey
)

// ConnectedComponents annotates every vertex with its weakly connected
// component id (property ComponentPropertyKey) and returns the annotated
// graph. maxIterations bounds label propagation; the graph diameter
// suffices for exact results.
func (g *LogicalGraph) ConnectedComponents(maxIterations int) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: algorithms.WeaklyConnectedComponents(g.g, maxIterations)}
}

// PageRank annotates every vertex with its PageRank score (property
// PageRankPropertyKey) after the given number of synchronous iterations.
func (g *LogicalGraph) PageRank(damping float64, iterations int) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: algorithms.PageRank(g.g, damping, iterations)}
}

// ShortestPaths annotates every vertex reachable from source with its
// shortest-path distance (property SSSPPropertyKey), reading edge weights
// from weightKey ("" treats every edge as weight 1).
func (g *LogicalGraph) ShortestPaths(source ID, weightKey string, maxIterations int) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: algorithms.SingleSourceShortestPaths(g.g, source, weightKey, maxIterations)}
}
