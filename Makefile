# Build/verify entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector — load-bearing, because runParts spawns
# one goroutine per partition and the fault-tolerance layer (panic
# containment, cancellation polling, retry loops) is concurrent by design.

GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build vet race

# Regenerate the paper's evaluation tables plus the recovery-overhead
# experiment (runtime vs injected worker failures).
bench:
	$(GO) run ./cmd/bench -exp all

clean:
	$(GO) clean ./...
