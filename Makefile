# Build/verify entry points. `make check` is the CI gate: vet, the project's
# own static-analysis suite (cypherlint), plus the full test suite under the
# race detector — load-bearing, because runParts spawns one goroutine per
# partition and the fault-tolerance layer (panic containment, cancellation
# polling, retry loops) is concurrent by design.

GO ?= go

# Third-party linters, pinned. They are optional locally (this repo builds
# offline; the tools are skipped when not installed) and mandatory in CI,
# where `make lint-tools` installs exactly these versions.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test vet lint lint-tools fuzz-smoke race chaos-smoke alloc-guard cluster-smoke check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs cypherlint (the in-tree go/analysis suite enforcing the engine's
# concurrency, cost-model and tracing invariants; see internal/lint) over the
# module, both standalone and as a vet tool so test files are covered too,
# then staticcheck and govulncheck when they are on PATH. The standalone pass
# prints per-analyzer wall time and finding counts (-stats) so a slow or
# noisy analyzer is visible in every CI log.
lint:
	$(GO) run ./cmd/cypherlint -stats ./...
	$(GO) build -o bin/cypherlint ./cmd/cypherlint
	$(GO) vet -vettool=bin/cypherlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make lint-tools)"; \
	fi

# lint-tools installs the pinned third-party linters (needs network access).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# fuzz-smoke gives each native fuzz target a short budget — enough to catch
# regressions in the properties (parser never panics, canonicalization is
# idempotent and literal-preserving) without open-ended fuzzing.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/session -run '^FuzzCanonicalQuery$$' -fuzz '^FuzzCanonicalQuery$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/cypher -run '^FuzzParse$$' -fuzz '^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gdl -run '^FuzzParse$$' -fuzz '^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run '^FuzzParamsRoundTrip$$' -fuzz '^FuzzParamsRoundTrip$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/lint/analysis -run '^FuzzCFGBuild$$' -fuzz '^FuzzCFGBuild$$' -fuzztime=$(FUZZTIME)

race:
	$(GO) test -race ./...

# chaos-smoke runs the seeded overload harness (internal/benchkit RunChaos)
# under the race detector with a deliberately tight Go heap limit: blowup
# queries interleaved with oracle-checked traffic against a governed,
# HTTP-served session. The harness itself asserts the governance contract —
# every blowup dies with a structured 503 + Retry-After, zero well-behaved
# queries are killed or corrupted, the broker's reservations drain to zero
# and no goroutines leak.
chaos-smoke:
	GOMEMLIMIT=256MiB $(GO) test ./internal/benchkit -run '^TestChaos' -race -count=1 -v

# alloc-guard pins the telemetry hot paths at zero allocations per
# recorded event: both the disabled (nil-registry) and the warm enabled
# paths must report 0 allocs/op, or the zero-cost guarantee of DESIGN.md
# decision 13 is broken.
alloc-guard:
	$(GO) test ./internal/obs -run '^$$' -bench 'Registry' -benchmem | awk ' \
		/^Benchmark/ { print; if ($$(NF-1)+0 != 0) bad = 1 } \
		END { if (bad) { print "alloc-guard: telemetry hot path allocates"; exit 1 } }'
	$(GO) test ./internal/qstore -run '^$$' -bench 'BenchmarkAppend' -benchmem | awk ' \
		/^BenchmarkAppendDisabled/ { print; if ($$(NF-1)+0 != 0) bad = 1 } \
		/^BenchmarkAppendEnabled/  { print; if ($$(NF-1)+0 > 16) bad = 1 } \
		END { if (bad) { print "alloc-guard: qstore append path over budget (disabled must be 0 allocs/op, enabled <= 16)"; exit 1 } }'
	$(GO) test ./internal/dataflow -run '^$$' -bench 'BenchmarkTransportNil' -benchmem | awk ' \
		/^Benchmark/ { print; if ($$(NF-1)+0 != 0) bad = 1 } \
		END { if (bad) { print "alloc-guard: nil-transport collectives allocate (single-process hot path must be free)"; exit 1 } }'
	$(GO) test ./internal/cluster -run '^$$' -bench 'BenchmarkWorkerTelemetryDisabled' -benchmem | awk ' \
		/^Benchmark/ { print; if ($$(NF-1)+0 != 0) bad = 1 } \
		END { if (bad) { print "alloc-guard: -no-telemetry worker path allocates (disabled shipping must be free)"; exit 1 } }'

check: build vet lint race alloc-guard

# cluster-smoke builds the real cypherd and cypherworker binaries, spawns
# a coordinator plus two worker OS processes over a generated dataset,
# queries over HTTP, crashes one worker mid-query and requires the
# recovered result to be bit-identical to a plain single-process cypherd.
# A second, unarmed cluster then checks the observability plane across
# real processes: the merged Chrome trace (one lane per worker), the
# federated /metrics scrape and the /cluster/workers roster.
cluster-smoke:
	CLUSTER_E2E=1 $(GO) test ./internal/cluster -run '^TestClusterE2E$$' -count=1 -v -timeout 300s

# Regenerate the paper's evaluation tables plus the recovery-overhead
# experiment (runtime vs injected worker failures).
bench:
	$(GO) run ./cmd/bench -exp all

clean:
	$(GO) clean ./...
	rm -rf bin
