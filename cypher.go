package gradoop

import (
	"context"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
	"gradoop/internal/stats"
)

// Semantics selects homomorphic or isomorphic matching for one element kind
// (§2.3: unlike Neo4j, vertex and edge semantics are chosen independently).
type Semantics = operators.Semantics

// Matching semantics.
const (
	// Homomorphism allows a query variable mapping to repeat data elements.
	Homomorphism = operators.Homomorphism
	// Isomorphism requires pairwise distinct data elements per kind.
	Isomorphism = operators.Isomorphism
)

// QueryOption configures a Cypher execution.
type QueryOption func(*queryConfig)

type queryConfig struct {
	cfg core.Config
}

// WithVertexSemantics sets the vertex matching semantics (default
// Homomorphism).
func WithVertexSemantics(s Semantics) QueryOption {
	return func(q *queryConfig) { q.cfg.Vertex = s }
}

// WithEdgeSemantics sets the edge matching semantics (default Homomorphism).
func WithEdgeSemantics(s Semantics) QueryOption {
	return func(q *queryConfig) { q.cfg.Edge = s }
}

// WithParams provides values for $parameters.
func WithParams(params map[string]PropertyValue) QueryOption {
	return func(q *queryConfig) { q.cfg.Params = params }
}

// WithStatistics reuses pre-computed graph statistics instead of collecting
// them per query.
func WithStatistics(s *Statistics) QueryOption {
	return func(q *queryConfig) { q.cfg.Stats = s.s }
}

// WithIndex executes leaf scans against a label-partitioned graph index
// (§3.4), loading only the datasets a label predicate selects.
func WithIndex(idx *GraphIndex) QueryOption {
	return func(q *queryConfig) { q.cfg.Access = planner.IndexedAccess{Index: idx.idx} }
}

// WithBroadcastJoin switches JoinEmbeddings to broadcasting the smaller
// input instead of repartitioning both.
func WithBroadcastJoin() QueryOption {
	return func(q *queryConfig) { q.cfg.Hint = dataflow.BroadcastLeft }
}

// WithTimeout aborts query execution after d: the dataflow job is
// cancelled mid-stage (a runaway variable-length expansion or cartesian
// join stops within milliseconds) and the query returns
// context.DeadlineExceeded. Partial metrics remain readable on the graph's
// environment.
func WithTimeout(d time.Duration) QueryOption {
	return func(q *queryConfig) { q.cfg.Timeout = d }
}

// WithContext cancels query execution when ctx is done. It composes with
// WithTimeout: whichever fires first cancels the job.
func WithContext(ctx context.Context) QueryOption {
	return func(q *queryConfig) { q.cfg.Context = ctx }
}

// WithoutSubqueryReuse disables recurring-subquery leaf sharing: by default,
// structurally identical sub-patterns (e.g. the three (:Person)-[:knows]->
// (:Person) edges of a triangle query) evaluate one shared leaf behind
// variable aliases.
func WithoutSubqueryReuse() QueryOption {
	return func(q *queryConfig) { q.cfg.DisableSubqueryReuse = true }
}

func (g *LogicalGraph) execute(query string, opts []QueryOption) (*core.Result, error) {
	var qc queryConfig
	for _, o := range opts {
		o(&qc)
	}
	return core.Execute(g.g, query, qc.cfg)
}

// Cypher evaluates a pattern matching query and returns the matches as a
// graph collection (Definition 2.4): one new logical graph per match, with
// variable bindings stored as graph head properties.
func (g *LogicalGraph) Cypher(query string, opts ...QueryOption) (*GraphCollection, error) {
	res, err := g.execute(query, opts)
	if err != nil {
		return nil, err
	}
	return &GraphCollection{env: g.env, c: res.GraphCollection()}, nil
}

// Row is one tabular query result.
type Row = core.Row

// CypherRows evaluates a query and returns Neo4j-style rows per its RETURN
// clause.
func (g *LogicalGraph) CypherRows(query string, opts ...QueryOption) ([]Row, error) {
	res, err := g.execute(query, opts)
	if err != nil {
		return nil, err
	}
	return res.Rows(), nil
}

// CypherCount evaluates a query and returns the number of matches without
// materializing them.
func (g *LogicalGraph) CypherCount(query string, opts ...QueryOption) (int64, error) {
	res, err := g.execute(query, opts)
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}

// ExplainCypher plans a query and renders the chosen operator tree with
// cardinality estimates without executing it... it executes leaf statistics
// collection only when no statistics were supplied.
func (g *LogicalGraph) ExplainCypher(query string, opts ...QueryOption) (string, error) {
	var qc queryConfig
	for _, o := range opts {
		o(&qc)
	}
	res, err := core.Plan(g.g, query, qc.cfg)
	if err != nil {
		return "", err
	}
	return res.Explain(), nil
}

// Statistics are pre-computed graph statistics for the query planner
// (§3.2).
type Statistics struct {
	s *stats.GraphStatistics
}

// CollectStatistics aggregates the statistics the planner consumes: counts,
// label distributions, distinct endpoint and property-value counts.
func (g *LogicalGraph) CollectStatistics() *Statistics {
	return &Statistics{s: stats.Collect(g.g)}
}

// String renders the statistics.
func (s *Statistics) String() string { return s.s.String() }

// GraphIndex is the label-partitioned representation of a logical graph
// (§3.4's IndexedLogicalGraph).
type GraphIndex struct {
	idx *epgm.IndexedLogicalGraph
}

// BuildIndex partitions the graph's elements by type label.
func (g *LogicalGraph) BuildIndex() *GraphIndex {
	return &GraphIndex{idx: epgm.BuildIndex(g.g)}
}
