// Package gradoop is a Go implementation of Gradoop's Extended Property
// Graph Model with Cypher-based graph pattern matching, reproducing
// "Cypher-based Graph Pattern Matching in Gradoop" (Junghanns et al.,
// GRADES 2017).
//
// The library couples three layers:
//
//   - a partitioned, shared-nothing dataflow engine in the style of Apache
//     Flink (internal/dataflow) with per-worker cost metering that yields a
//     deterministic simulated cluster runtime,
//   - the EPGM data model and its analytical operators — logical graphs,
//     graph collections, subgraph, transformation, grouping, set operations,
//     aggregation (internal/epgm),
//   - a Cypher query engine: parser, query-graph simplification, greedy
//     cost-based planning and physical operators over a compact embedding
//     representation (internal/cypher, internal/planner,
//     internal/operators, internal/embedding).
//
// Quick start:
//
//	env := gradoop.NewEnvironment(gradoop.WithWorkers(4))
//	g := env.GraphFromSlices("social", vertices, edges)
//	matches, err := g.Cypher(
//	    `MATCH (p1:Person)-[e:knows*1..3]->(p2:Person)
//	     WHERE p1.gender <> p2.gender RETURN *`,
//	    gradoop.WithVertexSemantics(gradoop.Homomorphism),
//	    gradoop.WithEdgeSemantics(gradoop.Isomorphism))
//
// The pattern matching operator follows Definition 2.4 of the paper: it
// returns a collection of new logical graphs, one per match, with the
// variable bindings stored as graph head properties. Tabular access in the
// style of Neo4j is available through CypherRows.
package gradoop

import (
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// Re-exported model types. These are the EPGM building blocks users pass to
// and receive from the public API.
type (
	// ID identifies graphs, vertices and edges.
	ID = epgm.ID
	// PropertyValue is a dynamically typed attribute value.
	PropertyValue = epgm.PropertyValue
	// Properties is an ordered key/value list.
	Properties = epgm.Properties
	// Vertex is a data vertex.
	Vertex = epgm.Vertex
	// Edge is a directed data edge.
	Edge = epgm.Edge
	// GraphHead carries a logical graph's label and properties.
	GraphHead = epgm.GraphHead
)

// Property value constructors, re-exported for convenience.
var (
	// String wraps a string property value.
	String = epgm.PVString
	// Int wraps an int64 property value.
	Int = epgm.PVInt
	// Float wraps a float64 property value.
	Float = epgm.PVFloat
	// Bool wraps a bool property value.
	Bool = epgm.PVBool
	// NewID allocates a fresh element identifier.
	NewID = epgm.NewID
)

// Environment owns the simulated cluster a set of graphs executes on.
type Environment struct {
	env *dataflow.Env
}

// Option configures an Environment.
type Option func(*dataflow.Config)

// WithWorkers sets the number of parallel workers (default 4).
func WithWorkers(n int) Option {
	return func(c *dataflow.Config) { c.Workers = n }
}

// WithMemoryPerWorker sets the simulated per-worker memory budget used by
// the join spill model.
func WithMemoryPerWorker(bytes int64) Option {
	return func(c *dataflow.Config) { c.MemoryPerWorker = bytes }
}

// NewEnvironment creates an execution environment.
func NewEnvironment(opts ...Option) *Environment {
	cfg := dataflow.DefaultConfig(4)
	for _, o := range opts {
		o(&cfg)
	}
	return &Environment{env: dataflow.NewEnv(cfg)}
}

// Workers returns the environment's parallelism.
func (e *Environment) Workers() int { return e.env.Workers() }

// Metrics summarizes the dataflow work executed so far.
type Metrics struct {
	// SimulatedTime is the deterministic cluster-time estimate derived from
	// per-worker CPU, network and spill costs.
	SimulatedTime time.Duration
	// ElementsProcessed is the total number of dataset elements processed.
	ElementsProcessed int64
	// NetworkBytes is the total volume shuffled between workers.
	NetworkBytes int64
	// SpilledBytes is the volume written to simulated disk under memory
	// pressure.
	SpilledBytes int64
	// Skew is the busiest worker's share relative to a perfect balance
	// (1.0 = balanced).
	Skew float64
}

// Metrics returns a snapshot of accumulated execution metrics.
func (e *Environment) Metrics() Metrics {
	s := e.env.Metrics()
	return Metrics{
		SimulatedTime:     s.SimTime,
		ElementsProcessed: s.TotalCPU,
		NetworkBytes:      s.TotalNet,
		SpilledBytes:      s.TotalSpill,
		Skew:              s.Skew(),
	}
}

// ResetMetrics clears the accumulated metrics, e.g. between loading and
// querying.
func (e *Environment) ResetMetrics() { e.env.ResetMetrics() }

// GraphFromSlices builds a logical graph from element slices, stamping all
// elements with the new graph's membership.
func (e *Environment) GraphFromSlices(label string, vertices []Vertex, edges []Edge) *LogicalGraph {
	return &LogicalGraph{env: e, g: epgm.GraphFromSlices(e.env, label, vertices, edges)}
}
