package gradoop

import (
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	csvstore "gradoop/internal/storage/csv"
)

// LogicalGraph is the EPGM's central abstraction: a labeled, attributed
// graph whose vertex and edge datasets are partitioned across the
// environment's workers.
type LogicalGraph struct {
	env *Environment
	g   *epgm.LogicalGraph
}

// Env returns the owning environment.
func (g *LogicalGraph) Env() *Environment { return g.env }

// Head returns the graph head.
func (g *LogicalGraph) Head() GraphHead { return g.g.Head }

// VertexCount returns |V|.
func (g *LogicalGraph) VertexCount() int64 { return g.g.VertexCount() }

// EdgeCount returns |E|.
func (g *LogicalGraph) EdgeCount() int64 { return g.g.EdgeCount() }

// Vertices materializes all vertices.
func (g *LogicalGraph) Vertices() []Vertex { return g.g.Vertices.Collect() }

// Edges materializes all edges.
func (g *LogicalGraph) Edges() []Edge { return g.g.Edges.Collect() }

// ReadCSV loads a logical graph from a Gradoop-CSV dataset directory.
func (e *Environment) ReadCSV(dir string) (*LogicalGraph, error) {
	g, err := csvstore.ReadLogicalGraph(e.env, dir)
	if err != nil {
		return nil, err
	}
	return &LogicalGraph{env: e, g: g}, nil
}

// WriteCSV writes the graph into a Gradoop-CSV dataset directory.
func (g *LogicalGraph) WriteCSV(dir string) error {
	return csvstore.WriteLogicalGraph(g.g, dir)
}

// Subgraph extracts the subgraph induced by the given predicates (nil
// accepts everything); dangling edges are removed.
func (g *LogicalGraph) Subgraph(vertexPred func(Vertex) bool, edgePred func(Edge) bool) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Subgraph(vertexPred, edgePred)}
}

// Transform applies element-wise transformations (nil = identity).
func (g *LogicalGraph) Transform(headFn func(GraphHead) GraphHead, vertexFn func(Vertex) Vertex, edgeFn func(Edge) Edge) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Transform(headFn, vertexFn, edgeFn)}
}

// GroupingConfig configures structural graph grouping.
type GroupingConfig = epgm.GroupingConfig

// GroupBy summarizes the graph into super-vertices and counted super-edges.
func (g *LogicalGraph) GroupBy(cfg GroupingConfig) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.GroupBy(cfg)}
}

// AggregateFunc folds a graph into one graph-head property.
type AggregateFunc = epgm.AggregateFunc

// Aggregate functions, re-exported.
var (
	// VertexCountAgg counts vertices into property "vertexCount".
	VertexCountAgg = epgm.VertexCountAgg
	// EdgeCountAgg counts edges into property "edgeCount".
	EdgeCountAgg = epgm.EdgeCountAgg
	// SumVertexPropertyAgg sums a numeric vertex property.
	SumVertexPropertyAgg = epgm.SumVertexPropertyAgg
	// MinVertexPropertyAgg takes the minimum of a numeric vertex property.
	MinVertexPropertyAgg = epgm.MinVertexPropertyAgg
	// MaxVertexPropertyAgg takes the maximum of a numeric vertex property.
	MaxVertexPropertyAgg = epgm.MaxVertexPropertyAgg
)

// Aggregate evaluates aggregate functions onto the graph head.
func (g *LogicalGraph) Aggregate(fns ...AggregateFunc) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Aggregate(fns...)}
}

// Verify checks the structural consistency of the graph (unique element
// ids, edge endpoints present) and returns the first violation, or nil.
func (g *LogicalGraph) Verify() error { return g.g.Verify() }

// EqualsByElementIDs reports whether both graphs contain exactly the same
// vertex and edge identifiers.
func (g *LogicalGraph) EqualsByElementIDs(other *LogicalGraph) bool {
	return g.g.EqualsByElementIDs(other.g)
}

// EqualsByData reports whether both graphs carry the same data ignoring
// identifiers (equal multisets of labeled, attributed vertices and edges
// with matching endpoint data).
func (g *LogicalGraph) EqualsByData(other *LogicalGraph) bool {
	return g.g.EqualsByData(other.g)
}

// SampleVertices returns the subgraph induced by a deterministic pseudo-
// random sample of roughly fraction of the vertices (Gradoop's random
// vertex sampling operator). Edges survive only when both endpoints do.
func (g *LogicalGraph) SampleVertices(fraction float64, seed uint64) *LogicalGraph {
	threshold := uint64(fraction * float64(^uint64(0)))
	return g.Subgraph(func(v Vertex) bool {
		x := (uint64(v.ID) + seed) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		return x < threshold
	}, nil)
}

// Combination unions two graphs' elements.
func (g *LogicalGraph) Combination(other *LogicalGraph) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Combination(other.g)}
}

// Overlap intersects two graphs' elements.
func (g *LogicalGraph) Overlap(other *LogicalGraph) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Overlap(other.g)}
}

// Exclusion removes the other graph's elements from g.
func (g *LogicalGraph) Exclusion(other *LogicalGraph) *LogicalGraph {
	return &LogicalGraph{env: g.env, g: g.g.Exclusion(other.g)}
}

// GraphCollection is a set of logical graphs sharing element datasets; it is
// the result type of the Cypher pattern matching operator.
type GraphCollection struct {
	env *Environment
	c   *epgm.GraphCollection
}

// GraphCount returns the number of logical graphs in the collection.
func (c *GraphCollection) GraphCount() int64 { return c.c.GraphCount() }

// Heads materializes all graph heads.
func (c *GraphCollection) Heads() []GraphHead { return c.c.Heads.Collect() }

// Graph extracts one member graph by id.
func (c *GraphCollection) Graph(id ID) (*LogicalGraph, bool) {
	g, ok := c.c.Graph(id)
	if !ok {
		return nil, false
	}
	return &LogicalGraph{env: c.env, g: g}, true
}

// Select keeps graphs whose head satisfies pred.
func (c *GraphCollection) Select(pred func(GraphHead) bool) *GraphCollection {
	return &GraphCollection{env: c.env, c: c.c.Select(pred)}
}

// Union merges two collections.
func (c *GraphCollection) Union(other *GraphCollection) *GraphCollection {
	return &GraphCollection{env: c.env, c: c.c.Union(other.c)}
}

// Intersect keeps graphs present in both collections.
func (c *GraphCollection) Intersect(other *GraphCollection) *GraphCollection {
	return &GraphCollection{env: c.env, c: c.c.Intersect(other.c)}
}

// Difference keeps graphs absent from the other collection.
func (c *GraphCollection) Difference(other *GraphCollection) *GraphCollection {
	return &GraphCollection{env: c.env, c: c.c.Difference(other.c)}
}

// internalGraph exposes the wrapped graph to sibling files.
func (g *LogicalGraph) internalGraph() *epgm.LogicalGraph { return g.g }

// internalEnv exposes the wrapped dataflow environment to sibling files.
func (e *Environment) internalEnv() *dataflow.Env { return e.env }
